//! Block-cached execution engine.
//!
//! The reference interpreter ([`Machine::step`]) fetches, decodes and
//! dispatches one [`dl_mips::inst::Inst`] per call, and pays per-step
//! accounting (execution counts, the step-limit compare, the
//! termination check) on every instruction. This module replaces that
//! inner loop with an r2vm-style block cache: straight-line runs of
//! instructions are decoded once into a compact pre-resolved form
//! ([`Op`]), their terminator classified ([`Term`]), and the dispatch
//! loop then executes whole basic blocks, batching `instructions`,
//! `exec_counts` and load/store totals per block retirement instead of
//! per instruction.
//!
//! Decoding pre-computes everything the hot loop would otherwise redo:
//! register numbers are widened to plain `u8` indices, immediates are
//! sign- or zero-extended to their final 32-bit form (`lui` is
//! pre-shifted), branch targets become absolute instruction indices,
//! and `jal`/`jalr` link values become the final return PC.
//!
//! Programs are immutable for the lifetime of a run and the cache is
//! private to a single [`Machine`], so there are no invalidation
//! rules: a decoded block can never go stale. Blocks may overlap (a
//! branch into the middle of a decoded block simply decodes a second,
//! shorter block); the per-block retirement counters account for this
//! correctly because each dynamic instruction is attributed to exactly
//! the one block that executed it.
//!
//! Equivalence with the reference engine — including exact `max_steps`
//! semantics, trap attribution to the precise faulting instruction
//! index, and byte-identical [`crate::RunResult`]s — is checked by the
//! differential tests in `tests/engine_differential.rs`.

use std::fmt;
use std::str::FromStr;

use dl_mips::inst::Inst;
use dl_mips::layout;
use dl_mips::program::Program;
use dl_mips::reg::Reg;

use crate::cpu::{Machine, Trap};
use crate::memory::MemorySystem;
use crate::stats::RunResult;

/// Which interpreter core executes a run.
///
/// Both engines produce bit-identical [`crate::RunResult`]s and trace
/// streams; `Step` survives as the executable specification the block
/// engine is differentially tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Reference path: one decoded [`Inst`] per [`Machine::step`] call.
    Step,
    /// Block-cached path: pre-decoded basic blocks, batched accounting.
    #[default]
    Block,
}

impl Engine {
    /// Resolves the engine from the `DL_SIM_ENGINE` environment
    /// variable (`step` or `block`, case-insensitive). Unset or
    /// unrecognized values select the default [`Engine::Block`].
    #[must_use]
    pub fn from_env() -> Engine {
        match std::env::var("DL_SIM_ENGINE") {
            Ok(v) => v.parse().unwrap_or_default(),
            Err(_) => Engine::default(),
        }
    }

    /// Stable lower-case name (`"step"` / `"block"`), matching the
    /// `DL_SIM_ENGINE` / `--engine` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Step => "step",
            Engine::Block => "block",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "step" => Ok(Engine::Step),
            "block" => Ok(Engine::Block),
            other => Err(format!("unknown engine '{other}' (expected step|block)")),
        }
    }
}

/// Block-cache behaviour counters for one run under [`Engine::Block`].
///
/// These are observability data only: they ride next to the
/// [`crate::RunResult`] (never inside it) so results stay byte-identical
/// across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Distinct basic blocks decoded into the cache.
    pub blocks_decoded: u64,
    /// Total instructions decoded across all cached blocks (counts
    /// overlap if control flow enters the middle of a decoded run).
    pub insts_decoded: u64,
    /// Block dispatches executed by the outer loop.
    pub dispatches: u64,
    /// Dispatches served from the cache (no decode needed).
    pub dispatch_hits: u64,
    /// Dynamic instructions retired through full block executions.
    pub insts_retired: u64,
}

impl BlockStats {
    /// Mean decoded block length in instructions (0 when empty).
    #[must_use]
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks_decoded == 0 {
            0.0
        } else {
            self.insts_decoded as f64 / self.blocks_decoded as f64
        }
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &BlockStats) {
        self.blocks_decoded += other.blocks_decoded;
        self.insts_decoded += other.insts_decoded;
        self.dispatches += other.dispatches;
        self.dispatch_hits += other.dispatch_hits;
        self.insts_retired += other.insts_retired;
    }
}

/// A pre-decoded straight-line instruction. Register fields are raw
/// indices (masked on use so bounds checks vanish); immediates carry
/// their final sign-/zero-extended 32-bit value.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lw {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lb {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lbu {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lh {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lhu {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Sw {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Sb {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Sh {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// `imm` is pre-shifted: the final register value.
    Lui {
        rt: u8,
        imm: u32,
    },
    /// Fused `addiu rt, $zero, imm`: a plain immediate load.
    Li {
        rt: u8,
        imm: u32,
    },
    /// Fused `addu rd, rs, $zero` (either operand): a register copy.
    Move {
        rd: u8,
        rs: u8,
    },
    Addu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Subu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Mul {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Div {
        rd: u8,
        rs: u8,
        rt: u8,
        at: u32,
    },
    Rem {
        rd: u8,
        rs: u8,
        rt: u8,
        at: u32,
    },
    And {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Or {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Xor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Nor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Slt {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sltu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    /// `imm` is sign-extended.
    Addiu {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    /// `imm` is zero-extended.
    Andi {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Ori {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Xori {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Slti {
        rt: u8,
        rs: u8,
        imm: i32,
    },
    /// `imm` is sign-extended then compared unsigned (MIPS semantics).
    Sltiu {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Sll {
        rd: u8,
        rt: u8,
        shamt: u32,
    },
    Srl {
        rd: u8,
        rt: u8,
        shamt: u32,
    },
    Sra {
        rd: u8,
        rt: u8,
        shamt: u32,
    },
    Sllv {
        rd: u8,
        rt: u8,
        rs: u8,
    },
    Srlv {
        rd: u8,
        rt: u8,
        rs: u8,
    },
    Srav {
        rd: u8,
        rt: u8,
        rs: u8,
    },
    Nop,
    // Fused pairs: two adjacent ops peephole-combined at decode into
    // one dispatch ([`fuse_pair`]). Each executes its halves strictly
    // in program order, so register aliasing between them behaves
    // exactly as the unfused sequence; memory halves keep their own
    // `at` for miss attribution and trap reporting. Naming is
    // first-half then second-half.
    /// `lw rt, off(base)` then `li rt2, imm`.
    LwLi {
        rt: u8,
        base: u8,
        rt2: u8,
        off: u32,
        at: u32,
        imm: u32,
    },
    /// `lw rt, off(base)` then `addiu rt2, rs2, imm`.
    LwAddiu {
        rt: u8,
        base: u8,
        rt2: u8,
        rs2: u8,
        off: u32,
        at: u32,
        imm: u32,
    },
    /// `lw rt, off(base)` then `sll rd, rt2, shamt`.
    LwSll {
        rt: u8,
        base: u8,
        rd: u8,
        rt2: u8,
        shamt: u8,
        off: u32,
        at: u32,
    },
    /// `lw rt, off(base)` then `addu rd, rs, rt2`.
    LwAddu {
        rt: u8,
        base: u8,
        rd: u8,
        rs: u8,
        rt2: u8,
        off: u32,
        at: u32,
    },
    /// `addu rd, rs, rt` then `lw rt2, off(base)`.
    AdduLw {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// `addu rd, rs, rt` then `sw rt2, off(base)`.
    AdduSw {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// `li rt, imm` then `addu rd, rs, rt2`.
    LiAddu {
        rt: u8,
        rd: u8,
        rs: u8,
        rt2: u8,
        imm: u32,
    },
    /// `sll rd, rt, shamt` then `addu rd2, rs, rt2`.
    SllAddu {
        rd: u8,
        rt: u8,
        shamt: u8,
        rd2: u8,
        rs: u8,
        rt2: u8,
    },
}

/// A block terminator with pre-resolved successors. Branch targets and
/// `jal`/`jalr` link values are final — no PC arithmetic at dispatch.
#[derive(Debug, Clone, Copy)]
enum Term {
    /// The block ran into the end of the text segment (halt sentinel).
    Fallthrough,
    Beq {
        rs: u8,
        rt: u8,
        taken: u32,
    },
    Bne {
        rs: u8,
        rt: u8,
        taken: u32,
    },
    Blez {
        rs: u8,
        taken: u32,
    },
    Bgtz {
        rs: u8,
        taken: u32,
    },
    Bltz {
        rs: u8,
        taken: u32,
    },
    Bgez {
        rs: u8,
        taken: u32,
    },
    J {
        target: u32,
    },
    Jal {
        target: u32,
        link: u32,
    },
    Jr {
        rs: u8,
    },
    Jalr {
        rd: u8,
        rs: u8,
        link: u32,
    },
    Syscall,
    // Fused compare-and-branch: a trailing `slt`/`slti` whose result
    // feeds a `beq`/`bne` against `$zero` is folded into the
    // terminator ([`fuse_term`]). The compare result is still written
    // to `rd` (later code may read it); the branch then tests the
    // written register, preserving exact sequential semantics even
    // when `rd` is `$zero`.
    /// `slt rd, rs, rt` then `beq rd, $zero, taken`.
    SltBeqz {
        rd: u8,
        rs: u8,
        rt: u8,
        taken: u32,
    },
    /// `slt rd, rs, rt` then `bne rd, $zero, taken`.
    SltBnez {
        rd: u8,
        rs: u8,
        rt: u8,
        taken: u32,
    },
    /// `slti rd, rs, imm` then `beq rd, $zero, taken`.
    SltiBeqz {
        rd: u8,
        rs: u8,
        imm: i32,
        taken: u32,
    },
    /// `slti rd, rs, imm` then `bne rd, $zero, taken`.
    SltiBnez {
        rd: u8,
        rs: u8,
        imm: i32,
        taken: u32,
    },
}

/// One decoded superblock: a straight-line body plus one terminator.
///
/// A superblock covers one basic block plus any successors reachable
/// by chaining unconditional `j`/`jal` edges at decode time
/// ([`MAX_SEGMENTS`] deep): the jump itself becomes a no-op (`jal`
/// leaves its link write behind as an [`Op::Li`]), and execution runs
/// straight through into the target's instructions. `ranges` records
/// the covered index intervals so batched `exec_counts` expansion
/// stays exact.
#[derive(Debug)]
struct Block {
    /// Entry instruction index.
    start: u32,
    /// Total instructions this block retires (all segments, including
    /// chained jumps and the terminator; the terminator contributes 0
    /// only for [`Term::Fallthrough`]).
    len: u32,
    /// Successor index after the terminator (the not-taken branch
    /// path); the terminator instruction itself sits at `fall - 1`.
    fall: u32,
    /// Static load-slot count, for batched access accounting.
    loads: u32,
    /// Static store-slot count.
    stores: u32,
    /// Covered `(start, len)` instruction-index intervals, in chain
    /// order; every retirement executed each interval exactly once.
    ranges: Box<[(u32, u32)]>,
    body: Box<[Op]>,
    term: Term,
}

/// Superblock chaining depth: how many basic blocks one decoded block
/// may cover by following unconditional jumps.
const MAX_SEGMENTS: usize = 8;

/// Per-run cache of decoded blocks, keyed by entry instruction index.
pub(crate) struct BlockCache {
    /// Entry index → block id + 1 (0 = not yet decoded). A flat table
    /// keeps the hot lookup to one load and one compare.
    ids: Box<[u32]>,
    blocks: Vec<Block>,
    /// Retirement count per block. The dispatch loop touches only this
    /// counter; `exec_counts`, access totals and the dispatch stats are
    /// all expanded from it once at the end of the run.
    retired: Vec<u64>,
    insts_decoded: u64,
}

impl BlockCache {
    pub(crate) fn new(program_len: usize) -> Self {
        BlockCache {
            ids: vec![0u32; program_len].into_boxed_slice(),
            blocks: Vec::new(),
            retired: Vec::new(),
            insts_decoded: 0,
        }
    }

    #[inline]
    fn block_id(&mut self, program: &Program, start: usize) -> usize {
        let slot = self.ids[start];
        if slot != 0 {
            return (slot - 1) as usize;
        }
        self.decode(program, start)
    }

    #[cold]
    fn decode(&mut self, program: &Program, start: usize) -> usize {
        let block = decode_block(program, start);
        self.insts_decoded += u64::from(block.len);
        let id = self.blocks.len();
        self.ids[start] = u32::try_from(id + 1).expect("block id overflow");
        self.blocks.push(block);
        self.retired.push(0);
        id
    }

    /// Expands the batched per-block retirement counters into the
    /// per-instruction `exec_counts` table. Overlapping blocks sum
    /// correctly: each retirement covered each of its index ranges
    /// exactly once.
    pub(crate) fn flush_exec_counts(&self, result: &mut RunResult) {
        for (block, &n) in self.blocks.iter().zip(&self.retired) {
            if n == 0 {
                continue;
            }
            for &(start, len) in &block.ranges {
                let start = start as usize;
                for count in &mut result.exec_counts[start..start + len as usize] {
                    *count += n;
                }
            }
        }
    }

    /// Expands the batched load/store totals (fast path only — the
    /// slow path counts per access through `dcache_load`/`dcache_store`).
    pub(crate) fn flush_access_totals(&self, result: &mut RunResult) {
        for (block, &n) in self.blocks.iter().zip(&self.retired) {
            result.loads += n * u64::from(block.loads);
            result.stores += n * u64::from(block.stores);
        }
        result.dcache_accesses += result.loads + result.stores;
    }

    pub(crate) fn stats(&self) -> BlockStats {
        let blocks_decoded = self.blocks.len() as u64;
        let mut dispatches = 0u64;
        let mut insts_retired = 0u64;
        for (block, &n) in self.blocks.iter().zip(&self.retired) {
            dispatches += n;
            insts_retired += n * u64::from(block.len);
        }
        BlockStats {
            blocks_decoded,
            insts_decoded: self.insts_decoded,
            dispatches,
            dispatch_hits: dispatches - blocks_decoded,
            insts_retired,
        }
    }
}

fn decode_block(program: &Program, start: usize) -> Block {
    let insts = &program.insts;
    let mut body = Vec::new();
    let mut loads = 0u32;
    let mut stores = 0u32;
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut seg_start = start;
    let mut i = start;
    // Chains across an unconditional jump when the target is a real
    // instruction (not the halt sentinel) and the chain depth allows:
    // the current segment (including the jump, which retires but
    // executes nothing) is sealed and decoding continues at the
    // target.
    let term = loop {
        if i == insts.len() {
            break Term::Fallthrough;
        }
        let inst = insts[i];
        i += 1;
        let taken = |t: dl_mips::inst::Label| t.index() as u32;
        // The link value a call terminator writes: PC of the next inst.
        let link = layout::pc_of_index(i);
        match inst {
            Inst::Beq { rs, rt, target } => {
                break Term::Beq {
                    rs: rs as u8,
                    rt: rt as u8,
                    taken: taken(target),
                };
            }
            Inst::Bne { rs, rt, target } => {
                break Term::Bne {
                    rs: rs as u8,
                    rt: rt as u8,
                    taken: taken(target),
                };
            }
            Inst::Blez { rs, target } => {
                break Term::Blez {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::Bgtz { rs, target } => {
                break Term::Bgtz {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::Bltz { rs, target } => {
                break Term::Bltz {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::Bgez { rs, target } => {
                break Term::Bgez {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::J { target } => {
                let t = taken(target) as usize;
                if t < insts.len() && ranges.len() + 1 < MAX_SEGMENTS {
                    ranges.push((seg_start as u32, (i - seg_start) as u32));
                    seg_start = t;
                    i = t;
                    continue;
                }
                break Term::J {
                    target: taken(target),
                };
            }
            Inst::Jal { target } => {
                let t = taken(target) as usize;
                if t < insts.len() && ranges.len() + 1 < MAX_SEGMENTS {
                    // The call's only architectural effect besides the
                    // jump is the link write; leave it behind as an op.
                    body.push(Op::Li {
                        rt: Reg::Ra as u8,
                        imm: link,
                    });
                    ranges.push((seg_start as u32, (i - seg_start) as u32));
                    seg_start = t;
                    i = t;
                    continue;
                }
                break Term::Jal {
                    target: taken(target),
                    link,
                };
            }
            Inst::Jr { rs } => break Term::Jr { rs: rs as u8 },
            Inst::Jalr { rd, rs } => {
                break Term::Jalr {
                    rd: rd as u8,
                    rs: rs as u8,
                    link,
                };
            }
            Inst::Syscall => break Term::Syscall,
            straight => {
                body.push(decode_op(straight, (i - 1) as u32, &mut loads, &mut stores));
            }
        }
    };
    ranges.push((seg_start as u32, (i - seg_start) as u32));
    let term = fuse_term(&mut body, term);
    let body = fuse_body(body);
    Block {
        start: u32::try_from(start).expect("program too large"),
        len: ranges.iter().map(|r| r.1).sum(),
        fall: i as u32,
        loads,
        stores,
        ranges: ranges.into_boxed_slice(),
        body: body.into_boxed_slice(),
        term,
    }
}

/// Folds a trailing compare into a `beq`/`bne`-against-`$zero`
/// terminator, popping the compare off the body. Runs before
/// [`fuse_body`] so the compare is still a standalone op.
fn fuse_term(body: &mut Vec<Op>, term: Term) -> Term {
    let zero_test = |brs: u8, brt: u8, rd: u8| (brs == rd && brt == 0) || (brs == 0 && brt == rd);
    let fused = match (body.last(), term) {
        (
            Some(&Op::Slt { rd, rs, rt }),
            Term::Beq {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltBeqz { rd, rs, rt, taken },
        (
            Some(&Op::Slt { rd, rs, rt }),
            Term::Bne {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltBnez { rd, rs, rt, taken },
        (
            Some(&Op::Slti { rt: rd, rs, imm }),
            Term::Beq {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltiBeqz { rd, rs, imm, taken },
        (
            Some(&Op::Slti { rt: rd, rs, imm }),
            Term::Bne {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltiBnez { rd, rs, imm, taken },
        _ => return term,
    };
    body.pop();
    fused
}

/// Greedy left-to-right peephole pass combining adjacent op pairs
/// into fused macro-ops. Pairs are chosen from the idioms compilers
/// emit around memory traffic (operand load + scale/constant, address
/// formation + access, compute + spill), where one dispatch instead
/// of two matters most. Fusion is invisible to all accounting:
/// `exec_counts` expands from block `(start, len)` ranges, access
/// totals from static slot counts, and each memory half keeps its
/// own `at`.
fn fuse_body(body: Vec<Op>) -> Vec<Op> {
    let mut out = Vec::with_capacity(body.len());
    let mut iter = body.into_iter().peekable();
    while let Some(op) = iter.next() {
        let fused = iter.peek().and_then(|next| fuse_pair(op, *next));
        match fused {
            Some(f) => {
                iter.next();
                out.push(f);
            }
            None => out.push(op),
        }
    }
    out
}

fn fuse_pair(a: Op, b: Op) -> Option<Op> {
    Some(match (a, b) {
        (Op::Lw { rt, base, off, at }, Op::Li { rt: rt2, imm }) => Op::LwLi {
            rt,
            base,
            rt2,
            off,
            at,
            imm,
        },
        (
            Op::Lw { rt, base, off, at },
            Op::Addiu {
                rt: rt2,
                rs: rs2,
                imm,
            },
        ) => Op::LwAddiu {
            rt,
            base,
            rt2,
            rs2,
            off,
            at,
            imm,
        },
        (Op::Lw { rt, base, off, at }, Op::Sll { rd, rt: rt2, shamt }) => Op::LwSll {
            rt,
            base,
            rd,
            rt2,
            shamt: shamt as u8,
            off,
            at,
        },
        (Op::Lw { rt, base, off, at }, Op::Addu { rd, rs, rt: rt2 }) => Op::LwAddu {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            at,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::Lw {
                rt: rt2,
                base,
                off,
                at,
            },
        ) => Op::AdduLw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::Sw {
                rt: rt2,
                base,
                off,
                at,
            },
        ) => Op::AdduSw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        },
        (Op::Li { rt, imm }, Op::Addu { rd, rs, rt: rt2 }) => Op::LiAddu {
            rt,
            rd,
            rs,
            rt2,
            imm,
        },
        (
            Op::Sll { rd, rt, shamt },
            Op::Addu {
                rd: rd2,
                rs,
                rt: rt2,
            },
        ) => Op::SllAddu {
            rd,
            rt,
            shamt: shamt as u8,
            rd2,
            rs,
            rt2,
        },
        _ => return None,
    })
}

fn decode_op(inst: Inst, at: u32, loads: &mut u32, stores: &mut u32) -> Op {
    let sx = |off: i16| off as i32 as u32;
    match inst {
        Inst::Lw { rt, base, off } => {
            *loads += 1;
            Op::Lw {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lb { rt, base, off } => {
            *loads += 1;
            Op::Lb {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lbu { rt, base, off } => {
            *loads += 1;
            Op::Lbu {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lh { rt, base, off } => {
            *loads += 1;
            Op::Lh {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lhu { rt, base, off } => {
            *loads += 1;
            Op::Lhu {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Sw { rt, base, off } => {
            *stores += 1;
            Op::Sw {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Sb { rt, base, off } => {
            *stores += 1;
            Op::Sb {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Sh { rt, base, off } => {
            *stores += 1;
            Op::Sh {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lui { rt, imm } => Op::Lui {
            rt: rt as u8,
            imm: u32::from(imm) << 16,
        },
        Inst::Addu {
            rd,
            rs,
            rt: Reg::Zero,
        } => Op::Move {
            rd: rd as u8,
            rs: rs as u8,
        },
        Inst::Addu {
            rd,
            rs: Reg::Zero,
            rt,
        } => Op::Move {
            rd: rd as u8,
            rs: rt as u8,
        },
        Inst::Addu { rd, rs, rt } => Op::Addu {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Subu { rd, rs, rt } => Op::Subu {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Mul { rd, rs, rt } => Op::Mul {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Div { rd, rs, rt } => Op::Div {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
            at,
        },
        Inst::Rem { rd, rs, rt } => Op::Rem {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
            at,
        },
        Inst::And { rd, rs, rt } => Op::And {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Or { rd, rs, rt } => Op::Or {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Xor { rd, rs, rt } => Op::Xor {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Nor { rd, rs, rt } => Op::Nor {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Slt { rd, rs, rt } => Op::Slt {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Sltu { rd, rs, rt } => Op::Sltu {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Addiu {
            rt,
            rs: Reg::Zero,
            imm,
        } => Op::Li {
            rt: rt as u8,
            imm: sx(imm),
        },
        Inst::Addiu { rt, rs, imm } => Op::Addiu {
            rt: rt as u8,
            rs: rs as u8,
            imm: sx(imm),
        },
        Inst::Andi { rt, rs, imm } => Op::Andi {
            rt: rt as u8,
            rs: rs as u8,
            imm: u32::from(imm),
        },
        Inst::Ori { rt, rs, imm } => Op::Ori {
            rt: rt as u8,
            rs: rs as u8,
            imm: u32::from(imm),
        },
        Inst::Xori { rt, rs, imm } => Op::Xori {
            rt: rt as u8,
            rs: rs as u8,
            imm: u32::from(imm),
        },
        Inst::Slti { rt, rs, imm } => Op::Slti {
            rt: rt as u8,
            rs: rs as u8,
            imm: i32::from(imm),
        },
        Inst::Sltiu { rt, rs, imm } => Op::Sltiu {
            rt: rt as u8,
            rs: rs as u8,
            imm: sx(imm),
        },
        Inst::Sll { rd, rt, shamt } => Op::Sll {
            rd: rd as u8,
            rt: rt as u8,
            shamt: u32::from(shamt),
        },
        Inst::Srl { rd, rt, shamt } => Op::Srl {
            rd: rd as u8,
            rt: rt as u8,
            shamt: u32::from(shamt),
        },
        Inst::Sra { rd, rt, shamt } => Op::Sra {
            rd: rd as u8,
            rt: rt as u8,
            shamt: u32::from(shamt),
        },
        Inst::Sllv { rd, rt, rs } => Op::Sllv {
            rd: rd as u8,
            rt: rt as u8,
            rs: rs as u8,
        },
        Inst::Srlv { rd, rt, rs } => Op::Srlv {
            rd: rd as u8,
            rt: rt as u8,
            rs: rs as u8,
        },
        Inst::Srav { rd, rt, rs } => Op::Srav {
            rd: rd as u8,
            rt: rt as u8,
            rs: rs as u8,
        },
        Inst::Nop => Op::Nop,
        // Control flow never reaches decode_op: decode_block breaks
        // to a Term first.
        other => unreachable!("terminator {other:?} in block body"),
    }
}

/// Cache address-decode geometry, hoisted into locals once per run so
/// the per-access fast path computes set and tag from registers
/// instead of reloading `Cache` fields per access.
#[derive(Clone, Copy)]
struct CacheView {
    set_shift: u32,
}

impl CacheView {
    fn new(cache: &MemorySystem) -> Self {
        CacheView {
            set_shift: cache.hot_params(),
        }
    }
}

/// Reads a register. The mask proves the index in-bounds so the
/// bounds check folds away.
#[inline(always)]
fn r(m: &Machine<'_>, reg: u8) -> u32 {
    m.regs[usize::from(reg) & 31]
}

/// Writes a register, discarding writes to `$zero`.
#[inline(always)]
fn w(m: &mut Machine<'_>, reg: u8, v: u32) {
    if reg != 0 {
        m.regs[usize::from(reg) & 31] = v;
    }
}

/// Executes one straight-line op. `SLOW` routes data accesses through
/// the full per-access hooks (tracing, prefetch, miss classification);
/// the fast path batches load/store totals at block retirement.
#[inline(always)]
fn exec_op<const SLOW: bool>(m: &mut Machine<'_>, cv: CacheView, op: &Op) -> Result<(), Trap> {
    match *op {
        Op::Lw { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u32(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v);
        }
        Op::Lb { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u8(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v as i8 as i32 as u32);
        }
        Op::Lbu { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u8(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, u32::from(v));
        }
        Op::Lh { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u16(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v as i16 as i32 as u32);
        }
        Op::Lhu { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u16(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, u32::from(v));
        }
        Op::Sw { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW>(m, cv, at, addr);
            m.mem
                .write_u32(addr, r(m, rt))
                .map_err(|fault| Trap::Mem { at, fault })?;
        }
        Op::Sb { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW>(m, cv, at, addr);
            m.mem
                .write_u8(addr, r(m, rt) as u8)
                .map_err(|fault| Trap::Mem { at, fault })?;
        }
        Op::Sh { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW>(m, cv, at, addr);
            m.mem
                .write_u16(addr, r(m, rt) as u16)
                .map_err(|fault| Trap::Mem { at, fault })?;
        }
        Op::Lui { rt, imm } => w(m, rt, imm),
        Op::Li { rt, imm } => w(m, rt, imm),
        Op::Move { rd, rs } => w(m, rd, r(m, rs)),
        Op::Addu { rd, rs, rt } => w(m, rd, r(m, rs).wrapping_add(r(m, rt))),
        Op::Subu { rd, rs, rt } => w(m, rd, r(m, rs).wrapping_sub(r(m, rt))),
        Op::Mul { rd, rs, rt } => w(m, rd, r(m, rs).wrapping_mul(r(m, rt))),
        Op::Div { rd, rs, rt, at } => {
            let at = at as usize;
            let d = r(m, rt) as i32;
            if d == 0 {
                return Err(Trap::DivByZero { at });
            }
            w(m, rd, (r(m, rs) as i32).wrapping_div(d) as u32);
        }
        Op::Rem { rd, rs, rt, at } => {
            let at = at as usize;
            let d = r(m, rt) as i32;
            if d == 0 {
                return Err(Trap::DivByZero { at });
            }
            w(m, rd, (r(m, rs) as i32).wrapping_rem(d) as u32);
        }
        Op::And { rd, rs, rt } => w(m, rd, r(m, rs) & r(m, rt)),
        Op::Or { rd, rs, rt } => w(m, rd, r(m, rs) | r(m, rt)),
        Op::Xor { rd, rs, rt } => w(m, rd, r(m, rs) ^ r(m, rt)),
        Op::Nor { rd, rs, rt } => w(m, rd, !(r(m, rs) | r(m, rt))),
        Op::Slt { rd, rs, rt } => w(m, rd, u32::from((r(m, rs) as i32) < (r(m, rt) as i32))),
        Op::Sltu { rd, rs, rt } => w(m, rd, u32::from(r(m, rs) < r(m, rt))),
        Op::Addiu { rt, rs, imm } => w(m, rt, r(m, rs).wrapping_add(imm)),
        Op::Andi { rt, rs, imm } => w(m, rt, r(m, rs) & imm),
        Op::Ori { rt, rs, imm } => w(m, rt, r(m, rs) | imm),
        Op::Xori { rt, rs, imm } => w(m, rt, r(m, rs) ^ imm),
        Op::Slti { rt, rs, imm } => w(m, rt, u32::from((r(m, rs) as i32) < imm)),
        Op::Sltiu { rt, rs, imm } => w(m, rt, u32::from(r(m, rs) < imm)),
        Op::Sll { rd, rt, shamt } => w(m, rd, r(m, rt) << shamt),
        Op::Srl { rd, rt, shamt } => w(m, rd, r(m, rt) >> shamt),
        Op::Sra { rd, rt, shamt } => w(m, rd, ((r(m, rt) as i32) >> shamt) as u32),
        Op::Sllv { rd, rt, rs } => w(m, rd, r(m, rt) << (r(m, rs) & 31)),
        Op::Srlv { rd, rt, rs } => w(m, rd, r(m, rt) >> (r(m, rs) & 31)),
        Op::Srav { rd, rt, rs } => w(m, rd, ((r(m, rt) as i32) >> (r(m, rs) & 31)) as u32),
        Op::Nop => {}
        // Fused pairs execute their halves strictly in program order;
        // see the variant docs for the underlying sequences.
        Op::LwLi {
            rt,
            base,
            rt2,
            off,
            at,
            imm,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u32(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v);
            w(m, rt2, imm);
        }
        Op::LwAddiu {
            rt,
            base,
            rt2,
            rs2,
            off,
            at,
            imm,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u32(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v);
            w(m, rt2, r(m, rs2).wrapping_add(imm));
        }
        Op::LwSll {
            rt,
            base,
            rd,
            rt2,
            shamt,
            off,
            at,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u32(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v);
            w(m, rd, r(m, rt2) << shamt);
        }
        Op::LwAddu {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            at,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u32(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v);
            w(m, rd, r(m, rs).wrapping_add(r(m, rt2)));
        }
        Op::AdduLw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        } => {
            let at = at as usize;
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW>(m, cv, at, addr);
            let v = m
                .mem
                .read_u32(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt2, v);
        }
        Op::AdduSw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        } => {
            let at = at as usize;
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW>(m, cv, at, addr);
            m.mem
                .write_u32(addr, r(m, rt2))
                .map_err(|fault| Trap::Mem { at, fault })?;
        }
        Op::LiAddu {
            rt,
            rd,
            rs,
            rt2,
            imm,
        } => {
            w(m, rt, imm);
            w(m, rd, r(m, rs).wrapping_add(r(m, rt2)));
        }
        Op::SllAddu {
            rd,
            rt,
            shamt,
            rd2,
            rs,
            rt2,
        } => {
            w(m, rd, r(m, rt) << shamt);
            w(m, rd2, r(m, rs).wrapping_add(r(m, rt2)));
        }
    }
    Ok(())
}

/// Load-slot cache access. Fast path: an access that hits the set's
/// MRU way changes no replacement state, so it is answered with one
/// tag compare ([`Cache::mru_tag`]) using the hoisted [`CacheView`]
/// geometry; everything else funnels through [`Cache::access`]. Only
/// misses update counters — `loads`/`dcache_accesses` totals are
/// batched per block retirement, and per-site hits are reconstructed
/// at the end of the run as `exec_counts - load_misses` (every
/// execution of a load site is exactly one access).
#[inline(always)]
fn load_access<const SLOW: bool>(m: &mut Machine<'_>, cv: CacheView, at: usize, addr: u32) {
    if SLOW {
        m.dcache_load(at, addr);
        return;
    }
    if mru_hit(m, cv, addr) {
        return;
    }
    load_access_slow(m, at, addr);
}

/// Non-MRU load access: full memory-system walk plus miss counters.
/// Out of line so the hit path materializes nothing for it.
#[cold]
fn load_access_slow(m: &mut Machine<'_>, at: usize, addr: u32) {
    if !m.cache.demand_access(addr).hit {
        m.result.load_misses[at] += 1;
        m.result.load_misses_total += 1;
        m.result.dcache_misses += 1;
    }
}

/// Store-slot cache access; `stores` totals are batched per block.
#[inline(always)]
fn store_access<const SLOW: bool>(m: &mut Machine<'_>, cv: CacheView, at: usize, addr: u32) {
    if SLOW {
        m.dcache_store(at, addr);
        return;
    }
    if mru_hit(m, cv, addr) {
        return;
    }
    store_access_slow(m, addr);
}

/// Non-MRU store access. Out of line like [`load_access_slow`].
#[cold]
fn store_access_slow(m: &mut Machine<'_>, addr: u32) {
    if !m.cache.demand_access(addr).hit {
        m.result.dcache_misses += 1;
    }
}

/// The fast-path MRU probe: true iff `addr` hits the MRU way of its
/// set, in which case the access is a hit with no state to update.
#[inline(always)]
fn mru_hit(m: &Machine<'_>, cv: CacheView, addr: u32) -> bool {
    let block = u64::from(addr >> cv.set_shift);
    let mru = m.cache.mru_blocks();
    // The set count is a power of two, so masking by `len - 1` keeps
    // the index in bounds and the bounds check folds away.
    let set = (block as usize) & (mru.len() - 1);
    mru[set] == block
}

/// Executes a terminator, returning the successor instruction index.
/// `at` is the terminator's own index; `fall` the fallthrough index.
#[inline(always)]
fn exec_term(m: &mut Machine<'_>, term: &Term, at: usize, fall: usize) -> Result<usize, Trap> {
    Ok(match *term {
        Term::Fallthrough => fall,
        Term::Beq { rs, rt, taken } => {
            if r(m, rs) == r(m, rt) {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bne { rs, rt, taken } => {
            if r(m, rs) != r(m, rt) {
                taken as usize
            } else {
                fall
            }
        }
        Term::Blez { rs, taken } => {
            if (r(m, rs) as i32) <= 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bgtz { rs, taken } => {
            if (r(m, rs) as i32) > 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bltz { rs, taken } => {
            if (r(m, rs) as i32) < 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bgez { rs, taken } => {
            if (r(m, rs) as i32) >= 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::J { target } => target as usize,
        Term::Jal { target, link } => {
            m.regs[Reg::Ra as usize] = link;
            target as usize
        }
        Term::Jr { rs } => m.resolve_jump(at, r(m, rs))?,
        Term::Jalr { rd, rs, link } => {
            // Read the target before the link write: rd may alias rs.
            let target = r(m, rs);
            w(m, rd, link);
            m.resolve_jump(at, target)?
        }
        Term::Syscall => {
            m.syscall(at)?;
            fall
        }
        Term::SltBeqz { rd, rs, rt, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < (r(m, rt) as i32)));
            if r(m, rd) == 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::SltBnez { rd, rs, rt, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < (r(m, rt) as i32)));
            if r(m, rd) != 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::SltiBeqz { rd, rs, imm, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < imm));
            if r(m, rd) == 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::SltiBnez { rd, rs, imm, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < imm));
            if r(m, rd) != 0 {
                taken as usize
            } else {
                fall
            }
        }
    })
}

/// The block-dispatch outer loop. Returns the run's block-cache stats;
/// the caller expands `exec_counts` and finalizes the result.
///
/// `max_steps` is exact: a block that would overshoot the limit is
/// split, executing only the instructions the budget still allows (so
/// traps inside the prefix still surface first) before reporting
/// [`Trap::StepLimit`] — byte-for-byte the reference engine's
/// behaviour.
pub(crate) fn run_blocks<const SLOW: bool>(
    m: &mut Machine<'_>,
    bc: &mut BlockCache,
    max_steps: u64,
) -> Result<(), Trap> {
    debug_assert!(m.finished.is_none(), "run after termination");
    debug_assert!(
        SLOW || m.cache.profile().is_none(),
        "cache profiling requires the slow path"
    );
    let cv = CacheView::new(&m.cache);
    let halt = m.halt_index;
    let mut pc = m.pc;
    let mut instructions = m.result.instructions;
    loop {
        if instructions >= max_steps {
            return Err(Trap::StepLimit { limit: max_steps });
        }
        let bid = bc.block_id(m.program, pc);
        let block = &bc.blocks[bid];
        let start = block.start as usize;
        let remaining = max_steps - instructions;
        if u64::from(block.len) > remaining {
            // Final partial block: remaining < len implies remaining
            // fits in the body (the terminator is the +1).
            return run_partial(m, start, remaining as usize, max_steps);
        }
        for op in &block.body {
            exec_op::<SLOW>(m, cv, op)?;
        }
        // The terminator instruction's own index is the final
        // segment's last (fusion and chaining mean body op count and
        // start + len no longer track it).
        let fall = block.fall as usize;
        let next = exec_term(m, &block.term, fall - 1, fall)?;
        instructions += u64::from(block.len);
        bc.retired[bid] += 1;
        if m.finished.is_some() {
            break;
        }
        if next == halt {
            // Fell off the entry function: $v0 is the exit code.
            m.finished = Some(m.reg(Reg::V0) as i32);
            break;
        }
        pc = next;
    }
    m.result.instructions = instructions;
    Ok(())
}

/// Executes the prefix of the block at `start` that still fits under
/// the step limit, then reports [`Trap::StepLimit`]. Runs the
/// reference stepper over the original instructions — `take` is an
/// instruction count, which decoded (possibly fused) ops no longer
/// mirror one-to-one. Every result of a trapping run is discarded by
/// the caller, so only the trap itself must match the reference
/// engine, and [`Machine::step`] guarantees that by construction.
/// Out of line: at most one partial block per run.
#[cold]
fn run_partial(m: &mut Machine<'_>, start: usize, take: usize, max_steps: u64) -> Result<(), Trap> {
    m.pc = start;
    for _ in 0..take {
        m.step()?;
    }
    Err(Trap::StepLimit { limit: max_steps })
}
