//! Block-cached execution engine.
//!
//! The reference interpreter ([`Machine::step`]) fetches, decodes and
//! dispatches one [`dl_mips::inst::Inst`] per call, and pays per-step
//! accounting (execution counts, the step-limit compare, the
//! termination check) on every instruction. This module replaces that
//! inner loop with an r2vm-style block cache: straight-line runs of
//! instructions are decoded once into a compact pre-resolved form
//! ([`Op`]), their terminator classified ([`Term`]), and the dispatch
//! loop then executes whole basic blocks, batching `instructions`,
//! `exec_counts` and load/store totals per block retirement instead of
//! per instruction.
//!
//! Decoding pre-computes everything the hot loop would otherwise redo:
//! register numbers are widened to plain `u8` indices, immediates are
//! sign- or zero-extended to their final 32-bit form (`lui` is
//! pre-shifted), branch targets become absolute instruction indices,
//! and `jal`/`jalr` link values become the final return PC.
//!
//! Programs are immutable for the lifetime of a run and the cache is
//! private to a single [`Machine`], so there are no invalidation
//! rules: a decoded block can never go stale. Blocks may overlap (a
//! branch into the middle of a decoded block simply decodes a second,
//! shorter block); the per-block retirement counters account for this
//! correctly because each dynamic instruction is attributed to exactly
//! the one block that executed it.
//!
//! Equivalence with the reference engine — including exact `max_steps`
//! semantics, trap attribution to the precise faulting instruction
//! index, and byte-identical [`crate::RunResult`]s — is checked by the
//! differential tests in `tests/engine_differential.rs`.

use std::fmt;
use std::str::FromStr;

use dl_mips::inst::Inst;
use dl_mips::layout;
use dl_mips::program::Program;
use dl_mips::reg::Reg;

use crate::cpu::{Machine, Trap};
use crate::memory::MemorySystem;
use crate::stats::RunResult;

/// Which interpreter core executes a run.
///
/// Both engines produce bit-identical [`crate::RunResult`]s and trace
/// streams; `Step` survives as the executable specification the block
/// engine is differentially tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Reference path: one decoded [`Inst`] per [`Machine::step`] call.
    Step,
    /// Block-cached path: pre-decoded basic blocks, batched accounting.
    #[default]
    Block,
}

impl Engine {
    /// Resolves the engine from the `DL_SIM_ENGINE` environment
    /// variable (`step` or `block`, case-insensitive). Unset or
    /// unrecognized values select the default [`Engine::Block`].
    #[must_use]
    pub fn from_env() -> Engine {
        match std::env::var("DL_SIM_ENGINE") {
            Ok(v) => v.parse().unwrap_or_default(),
            Err(_) => Engine::default(),
        }
    }

    /// Stable lower-case name (`"step"` / `"block"`), matching the
    /// `DL_SIM_ENGINE` / `--engine` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Step => "step",
            Engine::Block => "block",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "step" => Ok(Engine::Step),
            "block" => Ok(Engine::Block),
            other => Err(format!("unknown engine '{other}' (expected step|block)")),
        }
    }
}

/// Block-cache behaviour counters for one run under [`Engine::Block`].
///
/// These are observability data only: they ride next to the
/// [`crate::RunResult`] (never inside it) so results stay byte-identical
/// across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Distinct basic blocks decoded into the cache.
    pub blocks_decoded: u64,
    /// Total instructions decoded across all cached blocks (counts
    /// overlap if control flow enters the middle of a decoded run).
    pub insts_decoded: u64,
    /// Block dispatches executed by the outer loop.
    pub dispatches: u64,
    /// Dispatches served from the cache (no decode needed).
    pub dispatch_hits: u64,
    /// Dynamic instructions retired through full block executions.
    pub insts_retired: u64,
}

impl BlockStats {
    /// Mean decoded block length in instructions (0 when empty).
    #[must_use]
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks_decoded == 0 {
            0.0
        } else {
            self.insts_decoded as f64 / self.blocks_decoded as f64
        }
    }

    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &BlockStats) {
        self.blocks_decoded += other.blocks_decoded;
        self.insts_decoded += other.insts_decoded;
        self.dispatches += other.dispatches;
        self.dispatch_hits += other.dispatch_hits;
        self.insts_retired += other.insts_retired;
    }
}

/// Memory-system shapes for the fast dispatch loop: the run's
/// `MemoryConfig` is matched once up front and the chosen
/// instantiation of [`run_blocks`] carries it as a const, so the
/// non-MRU demand walk is a direct call into the one policy the
/// configuration uses — no `simple` test, no replacement-policy
/// dispatch, no redundant MRU re-probe. (Rust const generics take
/// primitives, hence `u8` constants rather than an enum.)
pub(crate) mod shape {
    /// Plain L1, true-LRU replacement.
    pub const PLAIN_LRU: u8 = 0;
    /// Plain L1, tree-PLRU replacement.
    pub const PLAIN_PLRU: u8 = 1;
    /// Plain L1, random replacement.
    pub const PLAIN_RANDOM: u8 = 2;
    /// L1 + L2 hierarchy (any policy): the two-level walk.
    pub const L2: u8 = 3;
    /// The generic [`crate::memory::MemorySystem::demand_access`]
    /// path: used by the slow engine and by `DL_PROBE_FAST=off`.
    pub const FULL: u8 = 4;
}

/// A pre-decoded straight-line instruction. Register fields are raw
/// indices (masked on use so bounds checks vanish); immediates carry
/// their final sign-/zero-extended 32-bit value.
#[derive(Debug, Clone, Copy)]
enum Op {
    Lw {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lb {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lbu {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lh {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Lhu {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Sw {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Sb {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    Sh {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// `imm` is pre-shifted: the final register value.
    Lui {
        rt: u8,
        imm: u32,
    },
    /// Fused `addiu rt, $zero, imm`: a plain immediate load.
    Li {
        rt: u8,
        imm: u32,
    },
    /// Fused `addu rd, rs, $zero` (either operand): a register copy.
    Move {
        rd: u8,
        rs: u8,
    },
    Addu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Subu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Mul {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Div {
        rd: u8,
        rs: u8,
        rt: u8,
        at: u32,
    },
    Rem {
        rd: u8,
        rs: u8,
        rt: u8,
        at: u32,
    },
    And {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Or {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Xor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Nor {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Slt {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    Sltu {
        rd: u8,
        rs: u8,
        rt: u8,
    },
    /// `imm` is sign-extended.
    Addiu {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    /// `imm` is zero-extended.
    Andi {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Ori {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Xori {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Slti {
        rt: u8,
        rs: u8,
        imm: i32,
    },
    /// `imm` is sign-extended then compared unsigned (MIPS semantics).
    Sltiu {
        rt: u8,
        rs: u8,
        imm: u32,
    },
    Sll {
        rd: u8,
        rt: u8,
        shamt: u32,
    },
    Srl {
        rd: u8,
        rt: u8,
        shamt: u32,
    },
    Sra {
        rd: u8,
        rt: u8,
        shamt: u32,
    },
    Sllv {
        rd: u8,
        rt: u8,
        rs: u8,
    },
    Srlv {
        rd: u8,
        rt: u8,
        rs: u8,
    },
    Srav {
        rd: u8,
        rt: u8,
        rs: u8,
    },
    Nop,
    // Fused pairs: two adjacent ops peephole-combined at decode into
    // one dispatch ([`fuse_pair`]). Each executes its halves strictly
    // in program order, so register aliasing between them behaves
    // exactly as the unfused sequence; memory halves keep their own
    // `at` for miss attribution and trap reporting. Naming is
    // first-half then second-half.
    /// `lw rt, off(base)` then `li rt2, imm`.
    LwLi {
        rt: u8,
        base: u8,
        rt2: u8,
        off: u32,
        at: u32,
        imm: u32,
    },
    /// `lw rt, off(base)` then `addiu rt2, rs2, imm`.
    LwAddiu {
        rt: u8,
        base: u8,
        rt2: u8,
        rs2: u8,
        off: u32,
        at: u32,
        imm: u32,
    },
    /// `lw rt, off(base)` then `sll rd, rt2, shamt`.
    LwSll {
        rt: u8,
        base: u8,
        rd: u8,
        rt2: u8,
        shamt: u8,
        off: u32,
        at: u32,
    },
    /// `lw rt, off(base)` then `addu rd, rs, rt2`.
    LwAddu {
        rt: u8,
        base: u8,
        rd: u8,
        rs: u8,
        rt2: u8,
        off: u32,
        at: u32,
    },
    /// `addu rd, rs, rt` then `lw rt2, off(base)`.
    AdduLw {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// `addu rd, rs, rt` then `sw rt2, off(base)`.
    AdduSw {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// `li rt, imm` then `addu rd, rs, rt2`.
    LiAddu {
        rt: u8,
        rd: u8,
        rs: u8,
        rt2: u8,
        imm: u32,
    },
    /// `sll rd, rt, shamt` then `addu rd2, rs, rt2`.
    SllAddu {
        rd: u8,
        rt: u8,
        shamt: u8,
        rd2: u8,
        rs: u8,
        rt2: u8,
    },
    // Probe-elimination forms (`…Np` = no probe): members of a
    // decode-time coalescing group. The group's [`Op::Probe`] answers
    // the cache side for every member at once, so these run the
    // architectural memory access only — no per-access tag compare.
    // Distinct variants instead of a `probe` flag keep the hot
    // dispatch free of a per-access branch. Only word accesses join
    // groups (minic emits nothing narrower); sub-word accesses break
    // them conservatively.
    /// A group-member `lw rt, off(base)`.
    LwNp {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// A group-member `sw rt, off(base)`.
    SwNp {
        rt: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// [`Op::LwLi`] whose load half is a group member.
    LwLiNp {
        rt: u8,
        base: u8,
        rt2: u8,
        off: u32,
        at: u32,
        imm: u32,
    },
    /// [`Op::LwAddiu`] whose load half is a group member.
    LwAddiuNp {
        rt: u8,
        base: u8,
        rt2: u8,
        rs2: u8,
        off: u32,
        at: u32,
        imm: u32,
    },
    /// [`Op::LwSll`] whose load half is a group member.
    LwSllNp {
        rt: u8,
        base: u8,
        rd: u8,
        rt2: u8,
        shamt: u8,
        off: u32,
        at: u32,
    },
    /// [`Op::LwAddu`] whose load half is a group member.
    LwAdduNp {
        rt: u8,
        base: u8,
        rd: u8,
        rs: u8,
        rt2: u8,
        off: u32,
        at: u32,
    },
    /// [`Op::AdduLw`] whose load half is a group member.
    AdduLwNp {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    /// [`Op::AdduSw`] whose store half is a group member.
    AdduSwNp {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        at: u32,
    },
    // Group-leader forms (`…Pr` = probe): the first member of a
    // coalescing group carries the group's single cache probe
    // ([`exec_probe`]) fused into its own dispatch, so the probe
    // costs zero extra ops. `gid` indexes `Block::groups` and takes
    // the `at` slot — the leader's instruction index lives in the
    // group's member record, where the probe's miss path needs it.
    /// A group-leader `lw rt, off(base)`.
    LwPr {
        rt: u8,
        base: u8,
        off: u32,
        gid: u32,
    },
    /// A group-leader `sw rt, off(base)`.
    SwPr {
        rt: u8,
        base: u8,
        off: u32,
        gid: u32,
    },
    /// [`Op::LwLi`] whose load half leads a group.
    LwLiPr {
        rt: u8,
        base: u8,
        rt2: u8,
        off: u32,
        gid: u32,
        imm: u32,
    },
    /// [`Op::LwAddiu`] whose load half leads a group.
    LwAddiuPr {
        rt: u8,
        base: u8,
        rt2: u8,
        rs2: u8,
        off: u32,
        gid: u32,
        imm: u32,
    },
    /// [`Op::LwSll`] whose load half leads a group.
    LwSllPr {
        rt: u8,
        base: u8,
        rd: u8,
        rt2: u8,
        shamt: u8,
        off: u32,
        gid: u32,
    },
    /// [`Op::LwAddu`] whose load half leads a group.
    LwAdduPr {
        rt: u8,
        base: u8,
        rd: u8,
        rs: u8,
        rt2: u8,
        off: u32,
        gid: u32,
    },
    /// [`Op::AdduLw`] whose load half leads a group. The probe runs
    /// after the `addu` half, at the leader's program position, so a
    /// base written by the `addu` is read post-write as the reference
    /// engine would.
    AdduLwPr {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        gid: u32,
    },
    /// [`Op::AdduSw`] whose store half leads a group.
    AdduSwPr {
        rd: u8,
        rs: u8,
        rt: u8,
        rt2: u8,
        base: u8,
        off: u32,
        gid: u32,
    },
    // Quad macro-ops: a second fusion pass pairs up adjacent fused
    // ops along the stereotyped minic -O0 rewrite sequences (slot
    // read-modify-write, two-slot reload + address formation, array
    // element read + write-back), so the four-instruction idiom costs
    // one dispatch. Suffix letters give each memory half's probe
    // form: `N` = group member (`…Np`), `P` = group leader (`…Pr`),
    // `Q` = ordinary probed slot. Only combinations the compiler
    // actually emits around coalescing groups are defined; everything
    // else simply stays pair-fused.
    /// [`Op::LwLiNp`] then [`Op::AdduSwNp`]: a slot RMW entirely
    /// inside one coalescing group.
    LwLiAdduSwNN {
        l_rt: u8,
        l_base: u8,
        l_rt2: u8,
        l_off: u32,
        l_at: u32,
        l_imm: u32,
        s_rd: u8,
        s_rs: u8,
        s_rt: u8,
        s_rt2: u8,
        s_base: u8,
        s_off: u32,
        s_at: u32,
    },
    /// [`Op::LwLiPr`] then [`Op::AdduSwNp`]: slot RMW whose load
    /// leads the group.
    LwLiAdduSwPN {
        l_rt: u8,
        l_base: u8,
        l_rt2: u8,
        l_off: u32,
        l_gid: u32,
        l_imm: u32,
        s_rd: u8,
        s_rs: u8,
        s_rt: u8,
        s_rt2: u8,
        s_base: u8,
        s_off: u32,
        s_at: u32,
    },
    /// [`Op::LwLiNp`] then [`Op::AdduSwPr`]: slot RMW whose store
    /// leads the next group.
    LwLiAdduSwNP {
        l_rt: u8,
        l_base: u8,
        l_rt2: u8,
        l_off: u32,
        l_at: u32,
        l_imm: u32,
        s_rd: u8,
        s_rs: u8,
        s_rt: u8,
        s_rt2: u8,
        s_base: u8,
        s_off: u32,
        s_gid: u32,
    },
    /// [`Op::LwAddiuPr`] then [`Op::LwSllNp`]: two same-line slot
    /// reloads plus constant add and index scale.
    LwAddiuLwSllPN {
        a_rt: u8,
        a_base: u8,
        a_rt2: u8,
        a_rs2: u8,
        a_off: u32,
        a_gid: u32,
        a_imm: u32,
        b_rt: u8,
        b_base: u8,
        b_rd: u8,
        b_rt2: u8,
        b_shamt: u8,
        b_off: u32,
        b_at: u32,
    },
    /// [`Op::AdduLw`] then [`Op::AdduSwPr`]: array element read
    /// (ordinary probed slot) plus group-leading spill.
    AdduLwAdduSwQP {
        a_rd: u8,
        a_rs: u8,
        a_rt: u8,
        a_rt2: u8,
        a_base: u8,
        a_off: u32,
        a_at: u32,
        b_rd: u8,
        b_rs: u8,
        b_rt: u8,
        b_rt2: u8,
        b_base: u8,
        b_off: u32,
        b_gid: u32,
    },
    // Octo macro-ops: a third greedy pass pairs adjacent quads (and a
    // trailing fused pair) covering eight-plus instructions per
    // dispatch. Same contract as the quads — the halves' code
    // verbatim, in program order. Prefixes `a_`..`d_` / `l_`,`s_`,`t_`
    // name the original memory-idiom slots left to right.
    /// [`Op::LwAddiuLwSllPN`] then [`Op::AdduLwAdduSwQP`]: the full
    /// indexed-array read-modify-write prologue of a minic `-O0`
    /// inner loop body.
    LwAddiuLwSllAdduLwAdduSwPNQP {
        a_rt: u8,
        a_base: u8,
        a_rt2: u8,
        a_rs2: u8,
        a_off: u32,
        a_gid: u32,
        a_imm: u32,
        b_rt: u8,
        b_base: u8,
        b_rd: u8,
        b_rt2: u8,
        b_shamt: u8,
        b_off: u32,
        b_at: u32,
        c_rd: u8,
        c_rs: u8,
        c_rt: u8,
        c_rt2: u8,
        c_base: u8,
        c_off: u32,
        c_at: u32,
        d_rd: u8,
        d_rs: u8,
        d_rt: u8,
        d_rt2: u8,
        d_base: u8,
        d_off: u32,
        d_gid: u32,
    },
    /// [`Op::LwLiAdduSwNN`] then [`Op::LwLiNp`]: slot increment plus
    /// the loop-test reload, all members of coalescing groups.
    LwLiAdduSwLwLiNNN {
        l_rt: u8,
        l_base: u8,
        l_rt2: u8,
        l_off: u32,
        l_at: u32,
        l_imm: u32,
        s_rd: u8,
        s_rs: u8,
        s_rt: u8,
        s_rt2: u8,
        s_base: u8,
        s_off: u32,
        s_at: u32,
        t_rt: u8,
        t_base: u8,
        t_rt2: u8,
        t_off: u32,
        t_at: u32,
        t_imm: u32,
        /// Decode-time store-to-load forward: the trailing load reads
        /// the exact address the store just wrote (same base register,
        /// untouched in between, same offset), so its value is the
        /// stored value and the memory round-trip is skipped. Both
        /// slots are group members, so there is no cache side to
        /// preserve, and the load cannot fault where the store
        /// succeeded.
        fwd: bool,
    },
}

/// One member of a coalescing group: enough to replay its cache
/// access exactly (site, offset, direction) when the group's
/// same-line proof fails at runtime.
#[derive(Debug, Clone, Copy)]
struct Member {
    off: u32,
    at: u32,
    is_load: bool,
}

/// A decode-time coalescing group: a maximal run of word accesses
/// through one base register, uninterrupted by any other memory
/// access or by a write to the base, whose constant offsets span less
/// than one cache line. At runtime a single [`Op::Probe`] decides the
/// whole group: if the two extreme addresses fall in the same line,
/// one probe answers every member (the leader's access makes the line
/// MRU, so the rest are state-free MRU hits by the fast-path
/// contract); otherwise the probe bails out and replays each member's
/// access individually, in program order.
#[derive(Debug)]
struct Group {
    /// The shared base register.
    base: u8,
    /// Offset of the lowest member address (signed, as u32).
    min_off: u32,
    /// Offset of the highest member address.
    max_off: u32,
    /// The leader's instruction index: the line-predictor slot and
    /// the miss-attribution site when the whole group misses.
    pred_at: u32,
    /// Every member in program order (`members[0]` is the leader).
    members: Box<[Member]>,
    /// All member offsets are congruent mod 4: one runtime alignment
    /// check on the lowest address then certifies every member, which
    /// is what lets the window skip per-member checks (see
    /// [`Machine::win_ok`]).
    aligned: bool,
}

/// A block terminator with pre-resolved successors. Branch targets and
/// `jal`/`jalr` link values are final — no PC arithmetic at dispatch.
#[derive(Debug, Clone, Copy)]
enum Term {
    /// The block ran into the end of the text segment (halt sentinel).
    Fallthrough,
    Beq {
        rs: u8,
        rt: u8,
        taken: u32,
    },
    Bne {
        rs: u8,
        rt: u8,
        taken: u32,
    },
    Blez {
        rs: u8,
        taken: u32,
    },
    Bgtz {
        rs: u8,
        taken: u32,
    },
    Bltz {
        rs: u8,
        taken: u32,
    },
    Bgez {
        rs: u8,
        taken: u32,
    },
    J {
        target: u32,
    },
    Jal {
        target: u32,
        link: u32,
    },
    Jr {
        rs: u8,
    },
    Jalr {
        rd: u8,
        rs: u8,
        link: u32,
    },
    Syscall,
    // Fused compare-and-branch: a trailing `slt`/`slti` whose result
    // feeds a `beq`/`bne` against `$zero` is folded into the
    // terminator ([`fuse_term`]). The compare result is still written
    // to `rd` (later code may read it); the branch then tests the
    // written register, preserving exact sequential semantics even
    // when `rd` is `$zero`.
    /// `slt rd, rs, rt` then `beq rd, $zero, taken`.
    SltBeqz {
        rd: u8,
        rs: u8,
        rt: u8,
        taken: u32,
    },
    /// `slt rd, rs, rt` then `bne rd, $zero, taken`.
    SltBnez {
        rd: u8,
        rs: u8,
        rt: u8,
        taken: u32,
    },
    /// `slti rd, rs, imm` then `beq rd, $zero, taken`.
    SltiBeqz {
        rd: u8,
        rs: u8,
        imm: i32,
        taken: u32,
    },
    /// `slti rd, rs, imm` then `bne rd, $zero, taken`.
    SltiBnez {
        rd: u8,
        rs: u8,
        imm: i32,
        taken: u32,
    },
}

/// One decoded superblock: a straight-line body plus one terminator.
///
/// A superblock covers one basic block plus any successors reachable
/// by chaining unconditional `j`/`jal` edges at decode time
/// ([`MAX_SEGMENTS`] deep): the jump itself becomes a no-op (`jal`
/// leaves its link write behind as an [`Op::Li`]), and execution runs
/// straight through into the target's instructions. `ranges` records
/// the covered index intervals so batched `exec_counts` expansion
/// stays exact.
#[derive(Debug)]
struct Block {
    /// Entry instruction index.
    start: u32,
    /// Total instructions this block retires (all segments, including
    /// chained jumps and the terminator; the terminator contributes 0
    /// only for [`Term::Fallthrough`]).
    len: u32,
    /// Successor index after the terminator (the not-taken branch
    /// path); the terminator instruction itself sits at `fall - 1`.
    fall: u32,
    /// Static load-slot count, for batched access accounting.
    loads: u32,
    /// Static store-slot count.
    stores: u32,
    /// Covered `(start, len)` instruction-index intervals, in chain
    /// order; every retirement executed each interval exactly once.
    ranges: Box<[(u32, u32)]>,
    body: Box<[Op]>,
    /// Coalescing groups referenced by this body's [`Op::Probe`] ops
    /// (empty unless probe elimination is enabled).
    groups: Box<[Group]>,
    term: Term,
}

/// Superblock chaining depth: how many basic blocks one decoded block
/// may cover by following unconditional jumps.
const MAX_SEGMENTS: usize = 8;

/// Per-run cache of decoded blocks, keyed by entry instruction index.
pub(crate) struct BlockCache {
    /// Entry index → block id + 1 (0 = not yet decoded). A flat table
    /// keeps the hot lookup to one load and one compare.
    ids: Box<[u32]>,
    blocks: Vec<Block>,
    /// Retirement count per block. The dispatch loop touches only this
    /// counter; `exec_counts`, access totals and the dispatch stats are
    /// all expanded from it once at the end of the run.
    retired: Vec<u64>,
    insts_decoded: u64,
    /// Cache line size, for the decode-time same-line span proof.
    line_bytes: u32,
    /// Whether decode runs the coalescing pass (fast path with probe
    /// elimination enabled; the slow path needs every access hook).
    coalesce: bool,
}

impl BlockCache {
    pub(crate) fn new(program_len: usize, line_bytes: u32, coalesce: bool) -> Self {
        BlockCache {
            ids: vec![0u32; program_len].into_boxed_slice(),
            blocks: Vec::new(),
            retired: Vec::new(),
            insts_decoded: 0,
            line_bytes,
            coalesce,
        }
    }

    #[inline]
    fn block_id(&mut self, program: &Program, start: usize) -> usize {
        let slot = self.ids[start];
        if slot != 0 {
            return (slot - 1) as usize;
        }
        self.decode(program, start)
    }

    #[cold]
    fn decode(&mut self, program: &Program, start: usize) -> usize {
        let block = decode_block(program, start, self.line_bytes, self.coalesce);
        self.insts_decoded += u64::from(block.len);
        let id = self.blocks.len();
        self.ids[start] = u32::try_from(id + 1).expect("block id overflow");
        self.blocks.push(block);
        self.retired.push(0);
        id
    }

    /// Expands the batched per-block retirement counters into the
    /// per-instruction `exec_counts` table. Overlapping blocks sum
    /// correctly: each retirement covered each of its index ranges
    /// exactly once.
    pub(crate) fn flush_exec_counts(&self, result: &mut RunResult) {
        for (block, &n) in self.blocks.iter().zip(&self.retired) {
            if n == 0 {
                continue;
            }
            for &(start, len) in &block.ranges {
                let start = start as usize;
                for count in &mut result.exec_counts[start..start + len as usize] {
                    *count += n;
                }
            }
        }
    }

    /// Expands the batched load/store totals (fast path only — the
    /// slow path counts per access through `dcache_load`/`dcache_store`).
    pub(crate) fn flush_access_totals(&self, result: &mut RunResult) {
        for (block, &n) in self.blocks.iter().zip(&self.retired) {
            result.loads += n * u64::from(block.loads);
            result.stores += n * u64::from(block.stores);
        }
        result.dcache_accesses += result.loads + result.stores;
    }

    pub(crate) fn stats(&self) -> BlockStats {
        let blocks_decoded = self.blocks.len() as u64;
        let mut dispatches = 0u64;
        let mut insts_retired = 0u64;
        for (block, &n) in self.blocks.iter().zip(&self.retired) {
            dispatches += n;
            insts_retired += n * u64::from(block.len);
        }
        BlockStats {
            blocks_decoded,
            insts_decoded: self.insts_decoded,
            dispatches,
            dispatch_hits: dispatches - blocks_decoded,
            insts_retired,
        }
    }
}

fn decode_block(program: &Program, start: usize, line_bytes: u32, coalesce: bool) -> Block {
    let insts = &program.insts;
    let mut body = Vec::new();
    let mut loads = 0u32;
    let mut stores = 0u32;
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut seg_start = start;
    let mut i = start;
    // Chains across an unconditional jump when the target is a real
    // instruction (not the halt sentinel) and the chain depth allows:
    // the current segment (including the jump, which retires but
    // executes nothing) is sealed and decoding continues at the
    // target.
    let term = loop {
        if i == insts.len() {
            break Term::Fallthrough;
        }
        let inst = insts[i];
        i += 1;
        let taken = |t: dl_mips::inst::Label| t.index() as u32;
        // The link value a call terminator writes: PC of the next inst.
        let link = layout::pc_of_index(i);
        match inst {
            Inst::Beq { rs, rt, target } => {
                break Term::Beq {
                    rs: rs as u8,
                    rt: rt as u8,
                    taken: taken(target),
                };
            }
            Inst::Bne { rs, rt, target } => {
                break Term::Bne {
                    rs: rs as u8,
                    rt: rt as u8,
                    taken: taken(target),
                };
            }
            Inst::Blez { rs, target } => {
                break Term::Blez {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::Bgtz { rs, target } => {
                break Term::Bgtz {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::Bltz { rs, target } => {
                break Term::Bltz {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::Bgez { rs, target } => {
                break Term::Bgez {
                    rs: rs as u8,
                    taken: taken(target),
                };
            }
            Inst::J { target } => {
                let t = taken(target) as usize;
                if t < insts.len() && ranges.len() + 1 < MAX_SEGMENTS {
                    ranges.push((seg_start as u32, (i - seg_start) as u32));
                    seg_start = t;
                    i = t;
                    continue;
                }
                break Term::J {
                    target: taken(target),
                };
            }
            Inst::Jal { target } => {
                let t = taken(target) as usize;
                if t < insts.len() && ranges.len() + 1 < MAX_SEGMENTS {
                    // The call's only architectural effect besides the
                    // jump is the link write; leave it behind as an op.
                    body.push(Op::Li {
                        rt: Reg::Ra as u8,
                        imm: link,
                    });
                    ranges.push((seg_start as u32, (i - seg_start) as u32));
                    seg_start = t;
                    i = t;
                    continue;
                }
                break Term::Jal {
                    target: taken(target),
                    link,
                };
            }
            Inst::Jr { rs } => break Term::Jr { rs: rs as u8 },
            Inst::Jalr { rd, rs } => {
                break Term::Jalr {
                    rd: rd as u8,
                    rs: rs as u8,
                    link,
                };
            }
            Inst::Syscall => break Term::Syscall,
            straight => {
                body.push(decode_op(straight, (i - 1) as u32, &mut loads, &mut stores));
            }
        }
    };
    ranges.push((seg_start as u32, (i - seg_start) as u32));
    let term = fuse_term(&mut body, term);
    let groups = if coalesce {
        coalesce_body(&mut body, line_bytes)
    } else {
        Vec::new()
    };
    let body = fuse_body(body);
    Block {
        start: u32::try_from(start).expect("program too large"),
        len: ranges.iter().map(|r| r.1).sum(),
        fall: i as u32,
        loads,
        stores,
        ranges: ranges.into_boxed_slice(),
        body: body.into_boxed_slice(),
        groups: groups.into_boxed_slice(),
        term,
    }
}

/// Which register an op writes, if any. Coalescing uses this to end a
/// group whenever its base register could change mid-group. Runs on
/// the unfused body (pairs do not exist yet), so every op writes at
/// most one register. Writes to `$zero` are discarded at execution,
/// so they never end a group.
fn op_writes(op: &Op) -> Option<u8> {
    let reg = match *op {
        Op::Lw { rt, .. }
        | Op::LwNp { rt, .. }
        | Op::Lb { rt, .. }
        | Op::Lbu { rt, .. }
        | Op::Lh { rt, .. }
        | Op::Lhu { rt, .. }
        | Op::Lui { rt, .. }
        | Op::Li { rt, .. }
        | Op::Addiu { rt, .. }
        | Op::Andi { rt, .. }
        | Op::Ori { rt, .. }
        | Op::Xori { rt, .. }
        | Op::Slti { rt, .. }
        | Op::Sltiu { rt, .. } => rt,
        Op::Move { rd, .. }
        | Op::Addu { rd, .. }
        | Op::Subu { rd, .. }
        | Op::Mul { rd, .. }
        | Op::Div { rd, .. }
        | Op::Rem { rd, .. }
        | Op::And { rd, .. }
        | Op::Or { rd, .. }
        | Op::Xor { rd, .. }
        | Op::Nor { rd, .. }
        | Op::Slt { rd, .. }
        | Op::Sltu { rd, .. }
        | Op::Sll { rd, .. }
        | Op::Srl { rd, .. }
        | Op::Sra { rd, .. }
        | Op::Sllv { rd, .. }
        | Op::Srlv { rd, .. }
        | Op::Srav { rd, .. } => rd,
        Op::Sw { .. } | Op::SwNp { .. } | Op::Sb { .. } | Op::Sh { .. } | Op::Nop => return None,
        // Fused and probe ops do not exist before fuse_body.
        other => unreachable!("fused op {other:?} before fuse_body"),
    };
    (reg & 31 != 0).then_some(reg)
}

/// The decode-time coalescing pass (probe elimination, part a).
///
/// Scans the unfused body for maximal runs of word accesses (`lw`/
/// `sw`) through one base register whose constant offsets span less
/// than one cache line — the static proof that a single dynamic line
/// can cover the whole run. A run ends conservatively at:
///
/// - any other memory access (it could alias the group's set, and an
///   intervening non-MRU access would invalidate the skipped members'
///   MRU-hit guarantee);
/// - any write to the base register (members' addresses would no
///   longer share the leader's base value);
/// - a sub-word access even through the same base (kept out of groups
///   so member ops stay word-sized; it ends the run like any other
///   access);
/// - the end of the body.
///
/// Runs of two or more members become a [`Group`]: the leader is
/// rewritten to its probe-carrying (`…Pr`) form — the group's single
/// cache probe rides the leader's own dispatch, costing zero extra
/// ops — and every later member to its probe-free (`…Np`) form.
/// Because the base is constant across the run, whether the offset
/// span *actually* falls within one line is decided by the probe at
/// runtime from the two extreme addresses; decode only guarantees the
/// span is narrow enough for that check to be able to succeed, and
/// the bail-out replays per-member probes when it does not.
fn coalesce_body(body: &mut [Op], line_bytes: u32) -> Vec<Group> {
    struct Pending {
        base: u8,
        min_off: i32,
        max_off: i32,
        /// Body indices of the member ops, in program order.
        members: Vec<usize>,
    }
    let mut groups: Vec<Group> = Vec::new();
    let mut pending: Option<Pending> = None;
    let line_span = line_bytes as i32;

    let mut flush = |body: &mut [Op], pending: &mut Option<Pending>| {
        let Some(p) = pending.take() else { return };
        if p.members.len() < 2 {
            return;
        }
        let members: Box<[Member]> = p
            .members
            .iter()
            .map(|&i| match body[i] {
                Op::Lw { off, at, .. } => Member {
                    off,
                    at,
                    is_load: true,
                },
                Op::Sw { off, at, .. } => Member {
                    off,
                    at,
                    is_load: false,
                },
                ref other => unreachable!("non-word group member {other:?}"),
            })
            .collect();
        let gid = u32::try_from(groups.len()).expect("group id overflow");
        for (mi, &i) in p.members.iter().enumerate() {
            body[i] = match (mi, body[i]) {
                (0, Op::Lw { rt, base, off, .. }) => Op::LwPr { rt, base, off, gid },
                (0, Op::Sw { rt, base, off, .. }) => Op::SwPr { rt, base, off, gid },
                (_, Op::Lw { rt, base, off, at }) => Op::LwNp { rt, base, off, at },
                (_, Op::Sw { rt, base, off, at }) => Op::SwNp { rt, base, off, at },
                (_, ref other) => unreachable!("non-word group member {other:?}"),
            };
        }
        let min_off = p.min_off as u32;
        let aligned = members
            .iter()
            .all(|mb| mb.off.wrapping_sub(min_off) & 3 == 0);
        groups.push(Group {
            base: p.base,
            min_off,
            max_off: p.max_off as u32,
            pred_at: members[0].at,
            members,
            aligned,
        });
    };

    for i in 0..body.len() {
        let op = body[i];
        match op {
            Op::Lw { rt, base, off, .. } | Op::Sw { rt, base, off, .. } => {
                let is_load = matches!(op, Op::Lw { .. });
                let off = off as i32;
                let joined = match &mut pending {
                    Some(p) if p.base == base => {
                        let min = p.min_off.min(off);
                        let max = p.max_off.max(off);
                        if max - min < line_span {
                            p.min_off = min;
                            p.max_off = max;
                            p.members.push(i);
                            true
                        } else {
                            false
                        }
                    }
                    _ => false,
                };
                if !joined {
                    flush(body, &mut pending);
                    pending = Some(Pending {
                        base,
                        min_off: off,
                        max_off: off,
                        members: vec![i],
                    });
                }
                // A load that overwrites its own base ends the run
                // *after* itself: its access still uses the old base,
                // but later members would not.
                if is_load && rt & 31 != 0 && rt == base {
                    flush(body, &mut pending);
                }
            }
            Op::Lb { .. } | Op::Lbu { .. } | Op::Lh { .. } | Op::Lhu { .. } => {
                flush(body, &mut pending);
                // The sub-word load may also write a pending base, but
                // the group was already ended by the access itself.
                pending = None;
            }
            Op::Sb { .. } | Op::Sh { .. } => {
                flush(body, &mut pending);
                pending = None;
            }
            ref alu => {
                if let (Some(p), Some(rd)) = (&pending, op_writes(alu)) {
                    if rd == p.base {
                        flush(body, &mut pending);
                    }
                }
            }
        }
    }
    flush(body, &mut pending);
    groups
}

/// Folds a trailing compare into a `beq`/`bne`-against-`$zero`
/// terminator, popping the compare off the body. Runs before
/// [`fuse_body`] so the compare is still a standalone op.
fn fuse_term(body: &mut Vec<Op>, term: Term) -> Term {
    let zero_test = |brs: u8, brt: u8, rd: u8| (brs == rd && brt == 0) || (brs == 0 && brt == rd);
    let fused = match (body.last(), term) {
        (
            Some(&Op::Slt { rd, rs, rt }),
            Term::Beq {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltBeqz { rd, rs, rt, taken },
        (
            Some(&Op::Slt { rd, rs, rt }),
            Term::Bne {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltBnez { rd, rs, rt, taken },
        (
            Some(&Op::Slti { rt: rd, rs, imm }),
            Term::Beq {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltiBeqz { rd, rs, imm, taken },
        (
            Some(&Op::Slti { rt: rd, rs, imm }),
            Term::Bne {
                rs: brs,
                rt: brt,
                taken,
            },
        ) if zero_test(brs, brt, rd) => Term::SltiBnez { rd, rs, imm, taken },
        _ => return term,
    };
    body.pop();
    fused
}

/// Greedy left-to-right peephole pass combining adjacent op pairs
/// into fused macro-ops. Pairs are chosen from the idioms compilers
/// emit around memory traffic (operand load + scale/constant, address
/// formation + access, compute + spill), where one dispatch instead
/// of two matters most. Fusion is invisible to all accounting:
/// `exec_counts` expands from block `(start, len)` ranges, access
/// totals from static slot counts, and each memory half keeps its
/// own `at`.
fn fuse_body(body: Vec<Op>) -> Vec<Op> {
    let mut out = Vec::with_capacity(body.len());
    let mut iter = body.into_iter().peekable();
    while let Some(op) = iter.next() {
        let fused = iter.peek().and_then(|next| fuse_pair(op, *next));
        match fused {
            Some(f) => {
                iter.next();
                out.push(f);
            }
            None => out.push(op),
        }
    }
    fuse_quads(out)
}

/// Second fusion pass: greedy left-to-right pairing of adjacent
/// *fused* ops into quad macro-ops (see the `…NN`/`…PN`/… variants).
/// Purely a dispatch-count optimization — each quad executes its two
/// halves' code verbatim in program order, so accounting and trap
/// identity are untouched.
fn fuse_quads(body: Vec<Op>) -> Vec<Op> {
    let mut out = Vec::with_capacity(body.len());
    let mut iter = body.into_iter().peekable();
    while let Some(op) = iter.next() {
        let fused = iter.peek().and_then(|next| fuse_quad(op, *next));
        match fused {
            Some(f) => {
                iter.next();
                out.push(f);
            }
            None => out.push(op),
        }
    }
    fuse_octs(out)
}

/// Third fusion pass: greedy left-to-right pairing of adjacent quads
/// (or a quad and a trailing fused pair) into octo macro-ops. Same
/// contract as [`fuse_quads`]: pure dispatch-count reduction.
fn fuse_octs(body: Vec<Op>) -> Vec<Op> {
    let mut out = Vec::with_capacity(body.len());
    let mut iter = body.into_iter().peekable();
    while let Some(op) = iter.next() {
        let fused = iter.peek().and_then(|next| fuse_oct(op, *next));
        match fused {
            Some(f) => {
                iter.next();
                out.push(f);
            }
            None => out.push(op),
        }
    }
    out
}

fn fuse_oct(a: Op, b: Op) -> Option<Op> {
    Some(match (a, b) {
        (
            Op::LwAddiuLwSllPN {
                a_rt,
                a_base,
                a_rt2,
                a_rs2,
                a_off,
                a_gid,
                a_imm,
                b_rt,
                b_base,
                b_rd,
                b_rt2,
                b_shamt,
                b_off,
                b_at,
            },
            Op::AdduLwAdduSwQP {
                a_rd: c_rd,
                a_rs: c_rs,
                a_rt: c_rt,
                a_rt2: c_rt2,
                a_base: c_base,
                a_off: c_off,
                a_at: c_at,
                b_rd: d_rd,
                b_rs: d_rs,
                b_rt: d_rt,
                b_rt2: d_rt2,
                b_base: d_base,
                b_off: d_off,
                b_gid: d_gid,
            },
        ) => Op::LwAddiuLwSllAdduLwAdduSwPNQP {
            a_rt,
            a_base,
            a_rt2,
            a_rs2,
            a_off,
            a_gid,
            a_imm,
            b_rt,
            b_base,
            b_rd,
            b_rt2,
            b_shamt,
            b_off,
            b_at,
            c_rd,
            c_rs,
            c_rt,
            c_rt2,
            c_base,
            c_off,
            c_at,
            d_rd,
            d_rs,
            d_rt,
            d_rt2,
            d_base,
            d_off,
            d_gid,
        },
        (
            Op::LwLiAdduSwNN {
                l_rt,
                l_base,
                l_rt2,
                l_off,
                l_at,
                l_imm,
                s_rd,
                s_rs,
                s_rt,
                s_rt2,
                s_base,
                s_off,
                s_at,
            },
            Op::LwLiNp {
                rt: t_rt,
                base: t_base,
                rt2: t_rt2,
                off: t_off,
                at: t_at,
                imm: t_imm,
            },
        ) => Op::LwLiAdduSwLwLiNNN {
            l_rt,
            l_base,
            l_rt2,
            l_off,
            l_at,
            l_imm,
            s_rd,
            s_rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_at,
            t_rt,
            t_base,
            t_rt2,
            t_off,
            t_at,
            t_imm,
            // No register is written between the two address
            // computations, so equal (base, off) at decode time means
            // equal addresses at run time.
            fwd: s_base == t_base && s_off == t_off,
        },
        _ => return None,
    })
}

fn fuse_quad(a: Op, b: Op) -> Option<Op> {
    Some(match (a, b) {
        (
            Op::LwLiNp {
                rt,
                base,
                rt2,
                off,
                at,
                imm,
            },
            Op::AdduSwNp {
                rd,
                rs,
                rt: s_rt,
                rt2: s_rt2,
                base: s_base,
                off: s_off,
                at: s_at,
            },
        ) => Op::LwLiAdduSwNN {
            l_rt: rt,
            l_base: base,
            l_rt2: rt2,
            l_off: off,
            l_at: at,
            l_imm: imm,
            s_rd: rd,
            s_rs: rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_at,
        },
        (
            Op::LwLiPr {
                rt,
                base,
                rt2,
                off,
                gid,
                imm,
            },
            Op::AdduSwNp {
                rd,
                rs,
                rt: s_rt,
                rt2: s_rt2,
                base: s_base,
                off: s_off,
                at: s_at,
            },
        ) => Op::LwLiAdduSwPN {
            l_rt: rt,
            l_base: base,
            l_rt2: rt2,
            l_off: off,
            l_gid: gid,
            l_imm: imm,
            s_rd: rd,
            s_rs: rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_at,
        },
        (
            Op::LwLiNp {
                rt,
                base,
                rt2,
                off,
                at,
                imm,
            },
            Op::AdduSwPr {
                rd,
                rs,
                rt: s_rt,
                rt2: s_rt2,
                base: s_base,
                off: s_off,
                gid: s_gid,
            },
        ) => Op::LwLiAdduSwNP {
            l_rt: rt,
            l_base: base,
            l_rt2: rt2,
            l_off: off,
            l_at: at,
            l_imm: imm,
            s_rd: rd,
            s_rs: rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_gid,
        },
        (
            Op::LwAddiuPr {
                rt,
                base,
                rt2,
                rs2,
                off,
                gid,
                imm,
            },
            Op::LwSllNp {
                rt: b_rt,
                base: b_base,
                rd: b_rd,
                rt2: b_rt2,
                shamt: b_shamt,
                off: b_off,
                at: b_at,
            },
        ) => Op::LwAddiuLwSllPN {
            a_rt: rt,
            a_base: base,
            a_rt2: rt2,
            a_rs2: rs2,
            a_off: off,
            a_gid: gid,
            a_imm: imm,
            b_rt,
            b_base,
            b_rd,
            b_rt2,
            b_shamt,
            b_off,
            b_at,
        },
        (
            Op::AdduLw {
                rd,
                rs,
                rt,
                rt2,
                base,
                off,
                at,
            },
            Op::AdduSwPr {
                rd: b_rd,
                rs: b_rs,
                rt: b_rt,
                rt2: b_rt2,
                base: b_base,
                off: b_off,
                gid: b_gid,
            },
        ) => Op::AdduLwAdduSwQP {
            a_rd: rd,
            a_rs: rs,
            a_rt: rt,
            a_rt2: rt2,
            a_base: base,
            a_off: off,
            a_at: at,
            b_rd,
            b_rs,
            b_rt,
            b_rt2,
            b_base,
            b_off,
            b_gid,
        },
        _ => return None,
    })
}

fn fuse_pair(a: Op, b: Op) -> Option<Op> {
    Some(match (a, b) {
        (Op::Lw { rt, base, off, at }, Op::Li { rt: rt2, imm }) => Op::LwLi {
            rt,
            base,
            rt2,
            off,
            at,
            imm,
        },
        (
            Op::Lw { rt, base, off, at },
            Op::Addiu {
                rt: rt2,
                rs: rs2,
                imm,
            },
        ) => Op::LwAddiu {
            rt,
            base,
            rt2,
            rs2,
            off,
            at,
            imm,
        },
        (Op::Lw { rt, base, off, at }, Op::Sll { rd, rt: rt2, shamt }) => Op::LwSll {
            rt,
            base,
            rd,
            rt2,
            shamt: shamt as u8,
            off,
            at,
        },
        (Op::Lw { rt, base, off, at }, Op::Addu { rd, rs, rt: rt2 }) => Op::LwAddu {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            at,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::Lw {
                rt: rt2,
                base,
                off,
                at,
            },
        ) => Op::AdduLw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::Sw {
                rt: rt2,
                base,
                off,
                at,
            },
        ) => Op::AdduSw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        },
        (Op::Li { rt, imm }, Op::Addu { rd, rs, rt: rt2 }) => Op::LiAddu {
            rt,
            rd,
            rs,
            rt2,
            imm,
        },
        (
            Op::Sll { rd, rt, shamt },
            Op::Addu {
                rd: rd2,
                rs,
                rt: rt2,
            },
        ) => Op::SllAddu {
            rd,
            rt,
            shamt: shamt as u8,
            rd2,
            rs,
            rt2,
        },
        // Probe-free group members fuse exactly like their probed
        // counterparts — coalescing runs before this pass and marks
        // members in place, so without these arms every group would
        // forfeit its pair fusion.
        (Op::LwNp { rt, base, off, at }, Op::Li { rt: rt2, imm }) => Op::LwLiNp {
            rt,
            base,
            rt2,
            off,
            at,
            imm,
        },
        (
            Op::LwNp { rt, base, off, at },
            Op::Addiu {
                rt: rt2,
                rs: rs2,
                imm,
            },
        ) => Op::LwAddiuNp {
            rt,
            base,
            rt2,
            rs2,
            off,
            at,
            imm,
        },
        (Op::LwNp { rt, base, off, at }, Op::Sll { rd, rt: rt2, shamt }) => Op::LwSllNp {
            rt,
            base,
            rd,
            rt2,
            shamt: shamt as u8,
            off,
            at,
        },
        (Op::LwNp { rt, base, off, at }, Op::Addu { rd, rs, rt: rt2 }) => Op::LwAdduNp {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            at,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::LwNp {
                rt: rt2,
                base,
                off,
                at,
            },
        ) => Op::AdduLwNp {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::SwNp {
                rt: rt2,
                base,
                off,
                at,
            },
        ) => Op::AdduSwNp {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        },
        // Group leaders fuse the same way, keeping the probe riding
        // the fused dispatch.
        (Op::LwPr { rt, base, off, gid }, Op::Li { rt: rt2, imm }) => Op::LwLiPr {
            rt,
            base,
            rt2,
            off,
            gid,
            imm,
        },
        (
            Op::LwPr { rt, base, off, gid },
            Op::Addiu {
                rt: rt2,
                rs: rs2,
                imm,
            },
        ) => Op::LwAddiuPr {
            rt,
            base,
            rt2,
            rs2,
            off,
            gid,
            imm,
        },
        (Op::LwPr { rt, base, off, gid }, Op::Sll { rd, rt: rt2, shamt }) => Op::LwSllPr {
            rt,
            base,
            rd,
            rt2,
            shamt: shamt as u8,
            off,
            gid,
        },
        (Op::LwPr { rt, base, off, gid }, Op::Addu { rd, rs, rt: rt2 }) => Op::LwAdduPr {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            gid,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::LwPr {
                rt: rt2,
                base,
                off,
                gid,
            },
        ) => Op::AdduLwPr {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            gid,
        },
        (
            Op::Addu { rd, rs, rt },
            Op::SwPr {
                rt: rt2,
                base,
                off,
                gid,
            },
        ) => Op::AdduSwPr {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            gid,
        },
        _ => return None,
    })
}

fn decode_op(inst: Inst, at: u32, loads: &mut u32, stores: &mut u32) -> Op {
    let sx = |off: i16| off as i32 as u32;
    match inst {
        Inst::Lw { rt, base, off } => {
            *loads += 1;
            Op::Lw {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lb { rt, base, off } => {
            *loads += 1;
            Op::Lb {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lbu { rt, base, off } => {
            *loads += 1;
            Op::Lbu {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lh { rt, base, off } => {
            *loads += 1;
            Op::Lh {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lhu { rt, base, off } => {
            *loads += 1;
            Op::Lhu {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Sw { rt, base, off } => {
            *stores += 1;
            Op::Sw {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Sb { rt, base, off } => {
            *stores += 1;
            Op::Sb {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Sh { rt, base, off } => {
            *stores += 1;
            Op::Sh {
                rt: rt as u8,
                base: base as u8,
                off: sx(off),
                at,
            }
        }
        Inst::Lui { rt, imm } => Op::Lui {
            rt: rt as u8,
            imm: u32::from(imm) << 16,
        },
        Inst::Addu {
            rd,
            rs,
            rt: Reg::Zero,
        } => Op::Move {
            rd: rd as u8,
            rs: rs as u8,
        },
        Inst::Addu {
            rd,
            rs: Reg::Zero,
            rt,
        } => Op::Move {
            rd: rd as u8,
            rs: rt as u8,
        },
        Inst::Addu { rd, rs, rt } => Op::Addu {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Subu { rd, rs, rt } => Op::Subu {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Mul { rd, rs, rt } => Op::Mul {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Div { rd, rs, rt } => Op::Div {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
            at,
        },
        Inst::Rem { rd, rs, rt } => Op::Rem {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
            at,
        },
        Inst::And { rd, rs, rt } => Op::And {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Or { rd, rs, rt } => Op::Or {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Xor { rd, rs, rt } => Op::Xor {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Nor { rd, rs, rt } => Op::Nor {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Slt { rd, rs, rt } => Op::Slt {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Sltu { rd, rs, rt } => Op::Sltu {
            rd: rd as u8,
            rs: rs as u8,
            rt: rt as u8,
        },
        Inst::Addiu {
            rt,
            rs: Reg::Zero,
            imm,
        } => Op::Li {
            rt: rt as u8,
            imm: sx(imm),
        },
        Inst::Addiu { rt, rs, imm } => Op::Addiu {
            rt: rt as u8,
            rs: rs as u8,
            imm: sx(imm),
        },
        Inst::Andi { rt, rs, imm } => Op::Andi {
            rt: rt as u8,
            rs: rs as u8,
            imm: u32::from(imm),
        },
        Inst::Ori { rt, rs, imm } => Op::Ori {
            rt: rt as u8,
            rs: rs as u8,
            imm: u32::from(imm),
        },
        Inst::Xori { rt, rs, imm } => Op::Xori {
            rt: rt as u8,
            rs: rs as u8,
            imm: u32::from(imm),
        },
        Inst::Slti { rt, rs, imm } => Op::Slti {
            rt: rt as u8,
            rs: rs as u8,
            imm: i32::from(imm),
        },
        Inst::Sltiu { rt, rs, imm } => Op::Sltiu {
            rt: rt as u8,
            rs: rs as u8,
            imm: sx(imm),
        },
        Inst::Sll { rd, rt, shamt } => Op::Sll {
            rd: rd as u8,
            rt: rt as u8,
            shamt: u32::from(shamt),
        },
        Inst::Srl { rd, rt, shamt } => Op::Srl {
            rd: rd as u8,
            rt: rt as u8,
            shamt: u32::from(shamt),
        },
        Inst::Sra { rd, rt, shamt } => Op::Sra {
            rd: rd as u8,
            rt: rt as u8,
            shamt: u32::from(shamt),
        },
        Inst::Sllv { rd, rt, rs } => Op::Sllv {
            rd: rd as u8,
            rt: rt as u8,
            rs: rs as u8,
        },
        Inst::Srlv { rd, rt, rs } => Op::Srlv {
            rd: rd as u8,
            rt: rt as u8,
            rs: rs as u8,
        },
        Inst::Srav { rd, rt, rs } => Op::Srav {
            rd: rd as u8,
            rt: rt as u8,
            rs: rs as u8,
        },
        Inst::Nop => Op::Nop,
        // Control flow never reaches decode_op: decode_block breaks
        // to a Term first.
        other => unreachable!("terminator {other:?} in block body"),
    }
}

/// Cache address-decode geometry, hoisted into locals once per run so
/// the per-access fast path computes set and tag from registers
/// instead of reloading `Cache` fields per access.
#[derive(Clone, Copy)]
struct CacheView {
    set_shift: u32,
}

impl CacheView {
    fn new(cache: &MemorySystem) -> Self {
        CacheView {
            set_shift: cache.hot_params(),
        }
    }
}

/// Reads a register. The mask proves the index in-bounds so the
/// bounds check folds away.
#[inline(always)]
fn r(m: &Machine<'_>, reg: u8) -> u32 {
    m.regs[usize::from(reg) & 31]
}

/// Writes a register, discarding writes to `$zero`.
#[inline(always)]
fn w(m: &mut Machine<'_>, reg: u8, v: u32) {
    if reg != 0 {
        m.regs[usize::from(reg) & 31] = v;
    }
}

/// Executes one straight-line op. `SLOW` routes data accesses through
/// the full per-access hooks (tracing, prefetch, miss classification);
/// the fast path batches load/store totals at block retirement.
/// `SHAPE` (see [`shape`]) statically selects the non-MRU demand walk
/// matching the run's memory configuration; `groups` is the owning
/// block's coalescing-group table for [`Op::Probe`].
#[inline(always)]
fn exec_op<const SLOW: bool, const SHAPE: u8>(
    m: &mut Machine<'_>,
    cv: CacheView,
    groups: &[Group],
    op: &Op,
) -> Result<(), Trap> {
    match *op {
        Op::Lw { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, rt, v);
        }
        Op::Lb { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = m
                .mem
                .read_u8(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v as i8 as i32 as u32);
        }
        Op::Lbu { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = m
                .mem
                .read_u8(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, u32::from(v));
        }
        Op::Lh { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = m
                .mem
                .read_u16(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, v as i16 as i32 as u32);
        }
        Op::Lhu { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = m
                .mem
                .read_u16(addr)
                .map_err(|fault| Trap::Mem { at, fault })?;
            w(m, rt, u32::from(v));
        }
        Op::Sw { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW, SHAPE>(m, cv, at, addr);
            mem_write(m, at, addr, r(m, rt))?;
        }
        Op::Sb { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW, SHAPE>(m, cv, at, addr);
            m.mem
                .write_u8(addr, r(m, rt) as u8)
                .map_err(|fault| Trap::Mem { at, fault })?;
        }
        Op::Sh { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW, SHAPE>(m, cv, at, addr);
            m.mem
                .write_u16(addr, r(m, rt) as u16)
                .map_err(|fault| Trap::Mem { at, fault })?;
        }
        Op::Lui { rt, imm } => w(m, rt, imm),
        Op::Li { rt, imm } => w(m, rt, imm),
        Op::Move { rd, rs } => w(m, rd, r(m, rs)),
        Op::Addu { rd, rs, rt } => w(m, rd, r(m, rs).wrapping_add(r(m, rt))),
        Op::Subu { rd, rs, rt } => w(m, rd, r(m, rs).wrapping_sub(r(m, rt))),
        Op::Mul { rd, rs, rt } => w(m, rd, r(m, rs).wrapping_mul(r(m, rt))),
        Op::Div { rd, rs, rt, at } => {
            let at = at as usize;
            let d = r(m, rt) as i32;
            if d == 0 {
                return Err(Trap::DivByZero { at });
            }
            w(m, rd, (r(m, rs) as i32).wrapping_div(d) as u32);
        }
        Op::Rem { rd, rs, rt, at } => {
            let at = at as usize;
            let d = r(m, rt) as i32;
            if d == 0 {
                return Err(Trap::DivByZero { at });
            }
            w(m, rd, (r(m, rs) as i32).wrapping_rem(d) as u32);
        }
        Op::And { rd, rs, rt } => w(m, rd, r(m, rs) & r(m, rt)),
        Op::Or { rd, rs, rt } => w(m, rd, r(m, rs) | r(m, rt)),
        Op::Xor { rd, rs, rt } => w(m, rd, r(m, rs) ^ r(m, rt)),
        Op::Nor { rd, rs, rt } => w(m, rd, !(r(m, rs) | r(m, rt))),
        Op::Slt { rd, rs, rt } => w(m, rd, u32::from((r(m, rs) as i32) < (r(m, rt) as i32))),
        Op::Sltu { rd, rs, rt } => w(m, rd, u32::from(r(m, rs) < r(m, rt))),
        Op::Addiu { rt, rs, imm } => w(m, rt, r(m, rs).wrapping_add(imm)),
        Op::Andi { rt, rs, imm } => w(m, rt, r(m, rs) & imm),
        Op::Ori { rt, rs, imm } => w(m, rt, r(m, rs) | imm),
        Op::Xori { rt, rs, imm } => w(m, rt, r(m, rs) ^ imm),
        Op::Slti { rt, rs, imm } => w(m, rt, u32::from((r(m, rs) as i32) < imm)),
        Op::Sltiu { rt, rs, imm } => w(m, rt, u32::from(r(m, rs) < imm)),
        Op::Sll { rd, rt, shamt } => w(m, rd, r(m, rt) << shamt),
        Op::Srl { rd, rt, shamt } => w(m, rd, r(m, rt) >> shamt),
        Op::Sra { rd, rt, shamt } => w(m, rd, ((r(m, rt) as i32) >> shamt) as u32),
        Op::Sllv { rd, rt, rs } => w(m, rd, r(m, rt) << (r(m, rs) & 31)),
        Op::Srlv { rd, rt, rs } => w(m, rd, r(m, rt) >> (r(m, rs) & 31)),
        Op::Srav { rd, rt, rs } => w(m, rd, ((r(m, rt) as i32) >> (r(m, rs) & 31)) as u32),
        Op::Nop => {}
        // Fused pairs execute their halves strictly in program order;
        // see the variant docs for the underlying sequences.
        Op::LwLi {
            rt,
            base,
            rt2,
            off,
            at,
            imm,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rt2, imm);
        }
        Op::LwAddiu {
            rt,
            base,
            rt2,
            rs2,
            off,
            at,
            imm,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rt2, r(m, rs2).wrapping_add(imm));
        }
        Op::LwSll {
            rt,
            base,
            rd,
            rt2,
            shamt,
            off,
            at,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rd, r(m, rt2) << shamt);
        }
        Op::LwAddu {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            at,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rd, r(m, rs).wrapping_add(r(m, rt2)));
        }
        Op::AdduLw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        } => {
            let at = at as usize;
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let addr = r(m, base).wrapping_add(off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, rt2, v);
        }
        Op::AdduSw {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        } => {
            let at = at as usize;
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let addr = r(m, base).wrapping_add(off);
            store_access::<SLOW, SHAPE>(m, cv, at, addr);
            mem_write(m, at, addr, r(m, rt2))?;
        }
        Op::LiAddu {
            rt,
            rd,
            rs,
            rt2,
            imm,
        } => {
            w(m, rt, imm);
            w(m, rd, r(m, rs).wrapping_add(r(m, rt2)));
        }
        Op::SllAddu {
            rd,
            rt,
            shamt,
            rd2,
            rs,
            rt2,
        } => {
            w(m, rd, r(m, rt) << shamt);
            w(m, rd2, r(m, rs).wrapping_add(r(m, rt2)));
        }
        // Probe-free group members: architectural effect only — the
        // group's Op::Probe already settled the cache side.
        Op::LwNp { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
        }
        Op::SwNp { rt, base, off, at } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            arch_write(m, at, addr, r(m, rt))?;
        }
        Op::LwLiNp {
            rt,
            base,
            rt2,
            off,
            at,
            imm,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rt2, imm);
        }
        Op::LwAddiuNp {
            rt,
            base,
            rt2,
            rs2,
            off,
            at,
            imm,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rt2, r(m, rs2).wrapping_add(imm));
        }
        Op::LwSllNp {
            rt,
            base,
            rd,
            rt2,
            shamt,
            off,
            at,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rd, r(m, rt2) << shamt);
        }
        Op::LwAdduNp {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            at,
        } => {
            let at = at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rd, r(m, rs).wrapping_add(r(m, rt2)));
        }
        Op::AdduLwNp {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        } => {
            let at = at as usize;
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt2, v);
        }
        Op::AdduSwNp {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            at,
        } => {
            let at = at as usize;
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let addr = r(m, base).wrapping_add(off);
            arch_write(m, at, addr, r(m, rt2))?;
        }
        // Group leaders: the group's single cache probe, then the
        // leader's own architectural access. Like every access slot
        // the cache side runs before a potential fault — a trapping
        // run's results are discarded wholesale, so only the trap's
        // identity must match the reference.
        Op::LwPr { rt, base, off, gid } => {
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
        }
        Op::SwPr { rt, base, off, gid } => {
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            arch_write(m, at, addr, r(m, rt))?;
        }
        Op::LwLiPr {
            rt,
            base,
            rt2,
            off,
            gid,
            imm,
        } => {
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rt2, imm);
        }
        Op::LwAddiuPr {
            rt,
            base,
            rt2,
            rs2,
            off,
            gid,
            imm,
        } => {
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rt2, r(m, rs2).wrapping_add(imm));
        }
        Op::LwSllPr {
            rt,
            base,
            rd,
            rt2,
            shamt,
            off,
            gid,
        } => {
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rd, r(m, rt2) << shamt);
        }
        Op::LwAdduPr {
            rt,
            base,
            rd,
            rs,
            rt2,
            off,
            gid,
        } => {
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt, v);
            w(m, rd, r(m, rs).wrapping_add(r(m, rt2)));
        }
        // The `addu` half executes first: a base written by it is
        // read by the probe post-write, exactly as the reference
        // engine orders it.
        Op::AdduLwPr {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            gid,
        } => {
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            let v = arch_read(m, at, addr)?;
            w(m, rt2, v);
        }
        Op::AdduSwPr {
            rd,
            rs,
            rt,
            rt2,
            base,
            off,
            gid,
        } => {
            w(m, rd, r(m, rs).wrapping_add(r(m, rt)));
            let g = &groups[gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, base).wrapping_add(off);
            arch_write(m, at, addr, r(m, rt2))?;
        }
        // Quad macro-ops: the two halves' code verbatim, in program
        // order.
        Op::LwLiAdduSwNN {
            l_rt,
            l_base,
            l_rt2,
            l_off,
            l_at,
            l_imm,
            s_rd,
            s_rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_at,
        } => {
            let addr = r(m, l_base).wrapping_add(l_off);
            let v = arch_read(m, l_at as usize, addr)?;
            w(m, l_rt, v);
            w(m, l_rt2, l_imm);
            w(m, s_rd, r(m, s_rs).wrapping_add(r(m, s_rt)));
            let addr = r(m, s_base).wrapping_add(s_off);
            arch_write(m, s_at as usize, addr, r(m, s_rt2))?;
        }
        Op::LwLiAdduSwPN {
            l_rt,
            l_base,
            l_rt2,
            l_off,
            l_gid,
            l_imm,
            s_rd,
            s_rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_at,
        } => {
            let g = &groups[l_gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, l_base).wrapping_add(l_off);
            let v = arch_read(m, at, addr)?;
            w(m, l_rt, v);
            w(m, l_rt2, l_imm);
            w(m, s_rd, r(m, s_rs).wrapping_add(r(m, s_rt)));
            let addr = r(m, s_base).wrapping_add(s_off);
            arch_write(m, s_at as usize, addr, r(m, s_rt2))?;
        }
        Op::LwLiAdduSwNP {
            l_rt,
            l_base,
            l_rt2,
            l_off,
            l_at,
            l_imm,
            s_rd,
            s_rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_gid,
        } => {
            let addr = r(m, l_base).wrapping_add(l_off);
            let v = arch_read(m, l_at as usize, addr)?;
            w(m, l_rt, v);
            w(m, l_rt2, l_imm);
            w(m, s_rd, r(m, s_rs).wrapping_add(r(m, s_rt)));
            let g = &groups[s_gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, s_base).wrapping_add(s_off);
            arch_write(m, at, addr, r(m, s_rt2))?;
        }
        Op::LwAddiuLwSllPN {
            a_rt,
            a_base,
            a_rt2,
            a_rs2,
            a_off,
            a_gid,
            a_imm,
            b_rt,
            b_base,
            b_rd,
            b_rt2,
            b_shamt,
            b_off,
            b_at,
        } => {
            let g = &groups[a_gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, a_base).wrapping_add(a_off);
            let v = arch_read(m, at, addr)?;
            w(m, a_rt, v);
            w(m, a_rt2, r(m, a_rs2).wrapping_add(a_imm));
            let addr = r(m, b_base).wrapping_add(b_off);
            let v = arch_read(m, b_at as usize, addr)?;
            w(m, b_rt, v);
            w(m, b_rd, r(m, b_rt2) << b_shamt);
        }
        Op::AdduLwAdduSwQP {
            a_rd,
            a_rs,
            a_rt,
            a_rt2,
            a_base,
            a_off,
            a_at,
            b_rd,
            b_rs,
            b_rt,
            b_rt2,
            b_base,
            b_off,
            b_gid,
        } => {
            let at = a_at as usize;
            w(m, a_rd, r(m, a_rs).wrapping_add(r(m, a_rt)));
            let addr = r(m, a_base).wrapping_add(a_off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, a_rt2, v);
            w(m, b_rd, r(m, b_rs).wrapping_add(r(m, b_rt)));
            let g = &groups[b_gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, b_base).wrapping_add(b_off);
            arch_write(m, at, addr, r(m, b_rt2))?;
        }
        // Octo macro-ops: four halves' code verbatim, in program
        // order.
        Op::LwAddiuLwSllAdduLwAdduSwPNQP {
            a_rt,
            a_base,
            a_rt2,
            a_rs2,
            a_off,
            a_gid,
            a_imm,
            b_rt,
            b_base,
            b_rd,
            b_rt2,
            b_shamt,
            b_off,
            b_at,
            c_rd,
            c_rs,
            c_rt,
            c_rt2,
            c_base,
            c_off,
            c_at,
            d_rd,
            d_rs,
            d_rt,
            d_rt2,
            d_base,
            d_off,
            d_gid,
        } => {
            let g = &groups[a_gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, a_base).wrapping_add(a_off);
            let v = arch_read(m, at, addr)?;
            w(m, a_rt, v);
            w(m, a_rt2, r(m, a_rs2).wrapping_add(a_imm));
            let addr = r(m, b_base).wrapping_add(b_off);
            let v = arch_read(m, b_at as usize, addr)?;
            w(m, b_rt, v);
            w(m, b_rd, r(m, b_rt2) << b_shamt);
            let at = c_at as usize;
            w(m, c_rd, r(m, c_rs).wrapping_add(r(m, c_rt)));
            let addr = r(m, c_base).wrapping_add(c_off);
            load_access::<SLOW, SHAPE>(m, cv, at, addr);
            let v = mem_read(m, at, addr)?;
            w(m, c_rt2, v);
            w(m, d_rd, r(m, d_rs).wrapping_add(r(m, d_rt)));
            let g = &groups[d_gid as usize];
            exec_probe::<SHAPE>(m, cv, g);
            let at = g.pred_at as usize;
            let addr = r(m, d_base).wrapping_add(d_off);
            arch_write(m, at, addr, r(m, d_rt2))?;
        }
        Op::LwLiAdduSwLwLiNNN {
            l_rt,
            l_base,
            l_rt2,
            l_off,
            l_at,
            l_imm,
            s_rd,
            s_rs,
            s_rt,
            s_rt2,
            s_base,
            s_off,
            s_at,
            t_rt,
            t_base,
            t_rt2,
            t_off,
            t_at,
            t_imm,
            fwd,
        } => {
            let addr = r(m, l_base).wrapping_add(l_off);
            let v = arch_read(m, l_at as usize, addr)?;
            w(m, l_rt, v);
            w(m, l_rt2, l_imm);
            w(m, s_rd, r(m, s_rs).wrapping_add(r(m, s_rt)));
            let addr = r(m, s_base).wrapping_add(s_off);
            let sv = r(m, s_rt2);
            arch_write(m, s_at as usize, addr, sv)?;
            let v = if fwd {
                sv
            } else {
                let addr = r(m, t_base).wrapping_add(t_off);
                arch_read(m, t_at as usize, addr)?
            };
            w(m, t_rt, v);
            w(m, t_rt2, t_imm);
        }
    }
    Ok(())
}

/// Executes one group probe (probe elimination, parts a + b).
///
/// With the base register constant across the group (a decode-time
/// invariant), the two extreme member addresses bound every member
/// address within a contiguous span narrower than one line. If both
/// endpoints decode to the same line number, the whole group touches
/// exactly that line and one answer covers every member:
///
/// 1. **Predictor hit** — the leader's `(line, generation)` entry
///    matches: the line was MRU in its set when the entry was written
///    and no non-MRU access has happened anywhere since (the global
///    generation bumps on every slow-path access), so it is still
///    MRU. Every member is a state-free MRU hit; nothing to do.
/// 2. **MRU hit** — the set's MRU way holds the line: same
///    conclusion; also refresh the predictor entry.
/// 3. **Leader miss/rotation** — one demand access at the leader's
///    site settles the line (hit-but-not-MRU rotates it to MRU, a
///    miss fills it and attributes the miss to the leader — exactly
///    what the reference engine does, since in a same-line group only
///    the first access can miss); the remaining members are then MRU
///    hits. The refreshed entry is written with the post-access
///    generation.
///
/// If the endpoints straddle a line boundary this execution, the
/// static proof does not apply and the probe bails out: every
/// member's access is replayed individually, in program order, which
/// is byte-identical to never having coalesced.
#[inline(always)]
fn exec_probe<const SHAPE: u8>(m: &mut Machine<'_>, cv: CacheView, g: &Group) {
    let base = r(m, g.base);
    let lo = base.wrapping_add(g.min_off);
    let hi = base.wrapping_add(g.max_off);
    let line = lo >> cv.set_shift;
    if line == hi >> cv.set_shift {
        // The group's span is one line; open the software TLB over it
        // so member word accesses skip the checked arena walk (purely
        // architectural — the cache-side answer below is independent).
        let line_start = line << cv.set_shift;
        if m.win.base() != line_start {
            m.win = m.mem.line_window(line_start, 1 << cv.set_shift);
        }
        // Certify the members' fast path: window open over this very
        // line, lowest address aligned, offsets congruent mod 4.
        // Together these bound every member access inside the window,
        // aligned — the unchecked read/write contract.
        m.win_ok = g.aligned && lo & 3 == 0 && m.win.base() == line_start;
        let entry = (u64::from(m.pred_gen) << 32) | u64::from(line);
        let slot = g.pred_at as usize;
        if m.line_pred[slot] == entry {
            return;
        }
        if mru_hit(m, cv, lo) {
            m.line_pred[slot] = entry;
            return;
        }
        group_access_slow::<SHAPE>(m, g, base, line);
    } else {
        m.win_ok = false;
        group_bailout_slow::<SHAPE>(m, cv, g, base);
    }
}

/// The leader's demand access when a same-line group is not already
/// MRU, plus the predictor refresh. Out of line like the singleton
/// slow paths.
#[cold]
fn group_access_slow<const SHAPE: u8>(m: &mut Machine<'_>, g: &Group, base: u32, line: u32) {
    let leader = g.members[0];
    let addr = base.wrapping_add(leader.off);
    if leader.is_load {
        load_access_slow::<SHAPE>(m, leader.at as usize, addr);
    } else {
        store_access_slow::<SHAPE>(m, addr);
    }
    // The access made the line MRU; certify that under the new
    // generation (the slow access above just bumped it).
    m.line_pred[g.pred_at as usize] = (u64::from(m.pred_gen) << 32) | u64::from(line);
}

/// Bail-out: the group's span straddles a line boundary at this
/// execution, so replay each member's probe individually in program
/// order — byte-identical to the uncoalesced per-access path.
#[cold]
fn group_bailout_slow<const SHAPE: u8>(m: &mut Machine<'_>, cv: CacheView, g: &Group, base: u32) {
    for member in &*g.members {
        let addr = base.wrapping_add(member.off);
        if mru_hit(m, cv, addr) {
            continue;
        }
        if member.is_load {
            load_access_slow::<SHAPE>(m, member.at as usize, addr);
        } else {
            store_access_slow::<SHAPE>(m, addr);
        }
    }
}

/// Architectural 32-bit load for an ordinary (non-coalesced) slot:
/// the checked arena walk. Singleton slots skip the window try — the
/// window tracks the line last certified by a *group* probe, which an
/// uncoalesced slot (typically a different base walking a different
/// arena) nearly never matches, so the probe would be pure overhead.
#[inline(always)]
fn mem_read(m: &mut Machine<'_>, at: usize, addr: u32) -> Result<u32, Trap> {
    m.mem
        .read_u32(addr)
        .map_err(|fault| Trap::Mem { at, fault })
}

/// Architectural 32-bit store for an ordinary slot; see [`mem_read`].
#[inline(always)]
fn mem_write(m: &mut Machine<'_>, at: usize, addr: u32, v: u32) -> Result<(), Trap> {
    m.mem
        .write_u32(addr, v)
        .map_err(|fault| Trap::Mem { at, fault })
}

/// Architectural 32-bit load for a group member or leader slot. When
/// the group's probe certified the span ([`Machine::win_ok`]), the
/// word is read through the window with every check elided; otherwise
/// the checked arena walk runs. A certificate implies the word is
/// mapped and aligned, so value and fault behavior are identical
/// either way.
#[inline(always)]
fn arch_read(m: &mut Machine<'_>, at: usize, addr: u32) -> Result<u32, Trap> {
    if m.win_ok {
        // SAFETY: the probe certificate bounds `addr` inside the
        // window's line, 4-aligned (see `exec_probe`), and the base
        // register is pinned from probe to last member.
        return Ok(unsafe { m.win.read_unchecked(&m.mem, addr) });
    }
    mem_read(m, at, addr)
}

/// Architectural 32-bit store for a group member or leader slot;
/// certificate-gated like [`arch_read`].
#[inline(always)]
fn arch_write(m: &mut Machine<'_>, at: usize, addr: u32, v: u32) -> Result<(), Trap> {
    if m.win_ok {
        // SAFETY: same certificate as `arch_read`.
        unsafe { m.win.write_unchecked(&mut m.mem, addr, v) };
        return Ok(());
    }
    mem_write(m, at, addr, v)
}

/// Load-slot cache access. Fast path: an access that hits the set's
/// MRU way changes no replacement state, so it is answered with one
/// tag compare ([`Cache::mru_tag`]) using the hoisted [`CacheView`]
/// geometry; everything else funnels through [`Cache::access`]. Only
/// misses update counters — `loads`/`dcache_accesses` totals are
/// batched per block retirement, and per-site hits are reconstructed
/// at the end of the run as `exec_counts - load_misses` (every
/// execution of a load site is exactly one access).
#[inline(always)]
fn load_access<const SLOW: bool, const SHAPE: u8>(
    m: &mut Machine<'_>,
    cv: CacheView,
    at: usize,
    addr: u32,
) {
    if SLOW {
        m.dcache_load(at, addr);
        return;
    }
    if mru_hit(m, cv, addr) {
        return;
    }
    load_access_slow::<SHAPE>(m, at, addr);
}

/// One non-MRU demand access through the statically selected memory
/// shape (see [`shape`]). Every call advances the line-predictor
/// generation first: a non-MRU access may change which line is MRU in
/// its set (rotation, fill, or — with an L2 — back-invalidation), so
/// every outstanding `(line, generation)` certificate must lapse.
#[inline]
fn demand_access_shaped<const SHAPE: u8>(m: &mut Machine<'_>, addr: u32) -> bool {
    m.bump_pred_gen();
    match SHAPE {
        shape::PLAIN_LRU => m.cache.plain_access_lru(addr),
        shape::PLAIN_PLRU => m.cache.plain_access_plru(addr),
        shape::PLAIN_RANDOM => m.cache.plain_access_random(addr),
        shape::L2 => m.cache.demand_access_full(addr).hit,
        _ => m.cache.demand_access(addr).hit,
    }
}

/// Non-MRU load access: full memory-system walk plus miss counters.
/// Force-inlined: letting the inliner decide here has measured as a
/// double-digit-percent throughput difference between otherwise
/// identical binaries (the engine loop's register allocation changes
/// around an opaque call), and the inlined form won.
#[inline(always)]
fn load_access_slow<const SHAPE: u8>(m: &mut Machine<'_>, at: usize, addr: u32) {
    if !demand_access_shaped::<SHAPE>(m, addr) {
        m.result.load_misses[at] += 1;
        m.result.load_misses_total += 1;
        m.result.dcache_misses += 1;
    }
}

/// Store-slot cache access; `stores` totals are batched per block.
#[inline(always)]
fn store_access<const SLOW: bool, const SHAPE: u8>(
    m: &mut Machine<'_>,
    cv: CacheView,
    at: usize,
    addr: u32,
) {
    if SLOW {
        m.dcache_store(at, addr);
        return;
    }
    if mru_hit(m, cv, addr) {
        return;
    }
    store_access_slow::<SHAPE>(m, addr);
}

/// Non-MRU store access. Inlined like [`load_access_slow`].
#[inline(always)]
fn store_access_slow<const SHAPE: u8>(m: &mut Machine<'_>, addr: u32) {
    if !demand_access_shaped::<SHAPE>(m, addr) {
        m.result.dcache_misses += 1;
    }
}

/// The fast-path MRU probe: true iff `addr` hits the MRU way of its
/// set, in which case the access is a hit with no state to update.
#[inline(always)]
fn mru_hit(m: &Machine<'_>, cv: CacheView, addr: u32) -> bool {
    let block = u64::from(addr >> cv.set_shift);
    let mru = m.cache.mru_blocks();
    // The set count is a power of two, so masking by `len - 1` keeps
    // the index in bounds and the bounds check folds away.
    let set = (block as usize) & (mru.len() - 1);
    mru[set] == block
}

/// Executes a terminator, returning the successor instruction index.
/// `at` is the terminator's own index; `fall` the fallthrough index.
#[inline(always)]
fn exec_term(m: &mut Machine<'_>, term: &Term, at: usize, fall: usize) -> Result<usize, Trap> {
    Ok(match *term {
        Term::Fallthrough => fall,
        Term::Beq { rs, rt, taken } => {
            if r(m, rs) == r(m, rt) {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bne { rs, rt, taken } => {
            if r(m, rs) != r(m, rt) {
                taken as usize
            } else {
                fall
            }
        }
        Term::Blez { rs, taken } => {
            if (r(m, rs) as i32) <= 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bgtz { rs, taken } => {
            if (r(m, rs) as i32) > 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bltz { rs, taken } => {
            if (r(m, rs) as i32) < 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::Bgez { rs, taken } => {
            if (r(m, rs) as i32) >= 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::J { target } => target as usize,
        Term::Jal { target, link } => {
            m.regs[Reg::Ra as usize] = link;
            target as usize
        }
        Term::Jr { rs } => m.resolve_jump(at, r(m, rs))?,
        Term::Jalr { rd, rs, link } => {
            // Read the target before the link write: rd may alias rs.
            let target = r(m, rs);
            w(m, rd, link);
            m.resolve_jump(at, target)?
        }
        Term::Syscall => {
            m.syscall(at)?;
            fall
        }
        Term::SltBeqz { rd, rs, rt, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < (r(m, rt) as i32)));
            if r(m, rd) == 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::SltBnez { rd, rs, rt, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < (r(m, rt) as i32)));
            if r(m, rd) != 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::SltiBeqz { rd, rs, imm, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < imm));
            if r(m, rd) == 0 {
                taken as usize
            } else {
                fall
            }
        }
        Term::SltiBnez { rd, rs, imm, taken } => {
            w(m, rd, u32::from((r(m, rs) as i32) < imm));
            if r(m, rd) != 0 {
                taken as usize
            } else {
                fall
            }
        }
    })
}

/// The block-dispatch outer loop. Returns the run's block-cache stats;
/// the caller expands `exec_counts` and finalizes the result.
///
/// `max_steps` is exact: a block that would overshoot the limit is
/// split, executing only the instructions the budget still allows (so
/// traps inside the prefix still surface first) before reporting
/// [`Trap::StepLimit`] — byte-for-byte the reference engine's
/// behaviour.
pub(crate) fn run_blocks<const SLOW: bool, const SHAPE: u8>(
    m: &mut Machine<'_>,
    bc: &mut BlockCache,
    max_steps: u64,
) -> Result<(), Trap> {
    debug_assert!(m.finished.is_none(), "run after termination");
    debug_assert!(
        SLOW || m.cache.profile().is_none(),
        "cache profiling requires the slow path"
    );
    let cv = CacheView::new(&m.cache);
    let halt = m.halt_index;
    let mut pc = m.pc;
    let mut instructions = m.result.instructions;
    'dispatch: loop {
        let bid = bc.block_id(m.program, pc);
        let block = &bc.blocks[bid];
        let start = block.start as usize;
        let len = u64::from(block.len);
        // Only a syscall terminator can set `finished`, so hoist that
        // test out of the re-entry path.
        let is_syscall = matches!(block.term, Term::Syscall);
        // Repetitions of this block not yet flushed to `bc.retired`.
        let mut reps: u64 = 0;
        // Self-loop fast path: a block whose terminator re-enters its
        // own start (the shape of every hot inner loop once chaining
        // folds the back-edge in) re-executes without touching the id
        // map or the block table, with retirement batched in `reps`.
        loop {
            let remaining = max_steps.saturating_sub(instructions);
            if len > remaining {
                // Final partial block: remaining < len implies
                // remaining fits in the body (the terminator is the
                // +1). Trapping runs discard results, so the `reps`
                // flush is cosmetic.
                bc.retired[bid] += reps;
                return run_partial(m, start, remaining as usize, max_steps);
            }
            for op in &block.body {
                exec_op::<SLOW, SHAPE>(m, cv, &block.groups, op)?;
            }
            // The terminator instruction's own index is the final
            // segment's last (fusion and chaining mean body op count
            // and start + len no longer track it).
            let fall = block.fall as usize;
            let next = exec_term(m, &block.term, fall - 1, fall)?;
            instructions += len;
            reps += 1;
            if next != start {
                bc.retired[bid] += reps;
                if m.finished.is_some() {
                    break 'dispatch;
                }
                if next == halt {
                    // Fell off the entry function: $v0 is the exit
                    // code.
                    m.finished = Some(m.reg(Reg::V0) as i32);
                    break 'dispatch;
                }
                pc = next;
                break;
            }
            if is_syscall && m.finished.is_some() {
                bc.retired[bid] += reps;
                break 'dispatch;
            }
        }
    }
    m.result.instructions = instructions;
    Ok(())
}

/// Executes the prefix of the block at `start` that still fits under
/// the step limit, then reports [`Trap::StepLimit`]. Runs the
/// reference stepper over the original instructions — `take` is an
/// instruction count, which decoded (possibly fused) ops no longer
/// mirror one-to-one. Every result of a trapping run is discarded by
/// the caller, so only the trap itself must match the reference
/// engine, and [`Machine::step`] guarantees that by construction.
/// Out of line: at most one partial block per run.
#[cold]
fn run_partial(m: &mut Machine<'_>, start: usize, take: usize, max_steps: u64) -> Result<(), Trap> {
    m.pc = start;
    for _ in 0..take {
        m.step()?;
    }
    Err(Trap::StepLimit { limit: max_steps })
}
