//! # dl-sim
//!
//! A functional simulator for the `dl-mips` instruction set with a
//! configurable L1 data-cache model and per-instruction profiling.
//!
//! This crate replaces SimpleScalar's `sim-cache` in the paper's
//! pipeline: it executes a [`dl_mips::Program`], simulates a
//! set-associative LRU data cache, and records — per static
//! instruction — execution counts and (for loads) hit/miss counts.
//! Those measurements are exactly what the training phase (deriving
//! class weights) and the evaluation metrics (π, ρ, ξ, the ideal set,
//! the profiling set) consume.
//!
//! # Example
//!
//! ```
//! use dl_mips::parse::parse_asm;
//! use dl_sim::{run, RunConfig};
//!
//! let p = parse_asm(
//!     "main:\n\
//!      \tli $t0, 100\n\
//!      .Lloop:\n\
//!      \taddiu $t0, $t0, -1\n\
//!      \tbgtz $t0, .Lloop\n\
//!      \tli $v0, 10\n\
//!      \tsyscall\n",
//! ).unwrap();
//! let result = run(&p, &RunConfig::default()).unwrap();
//! assert_eq!(result.exit_code, 0);
//! assert!(result.instructions >= 200);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod cpu;
pub mod mem;
pub mod memory;
pub mod observe;
pub mod reuse;
pub mod stats;
pub mod trace;

pub use block::{BlockStats, Engine};
pub use cache::{Cache, CacheConfig, CacheProfile, MissClass, MissClasses};
pub use cpu::{run, run_full, run_with_stats, Machine, PrefetchConfig, RunConfig, SimOutput, Trap};
pub use memory::{
    Inclusion, L2Config, MemoryConfig, Policy, ReplacementPolicy, StridePrefetchConfig,
};
pub use observe::{EpochMisses, MissObservatory, ObserveConfig};
pub use reuse::{ReuseMeasurement, SiteHistogram};
pub use stats::RunResult;
