//! Measured reuse-distance histograms: the dynamic ground truth the
//! static profiles in `dl-analysis::profile` are validated against.
//!
//! An unbounded shadow LRU stack over cache *blocks* tracks, for
//! every load, its **stack distance** — the number of distinct blocks
//! referenced since the previous reference to the same block (Olken's
//! algorithm: a Fenwick tree over recency stamps gives each distance
//! in `O(log n)`). Distances land in the same 65 log₂ buckets the
//! static pass emits, so the two histograms compare bucket for
//! bucket, and the classic inclusion property prices every geometry
//! from one run: a fully-associative LRU cache of `C` blocks hits an
//! access iff its distance is below `C`, and for the power-of-two
//! capacities this repository sweeps the bucket boundary is exact.
//!
//! Stores update recency (a loaded block a store just touched is
//! near, not far) but only loads contribute histogram entries —
//! mirroring the static side, which profiles load sites.

use std::collections::HashMap;

/// Number of log₂ distance buckets (bucket 0 + one per bit of `u64`).
pub const BUCKETS: usize = 65;

/// The log₂ bucket of stack distance `d`: bucket 0 holds distance 0,
/// bucket `b ≥ 1` holds `[2^(b-1), 2^b)`. Identical to the static
/// side's bucketing.
#[must_use]
pub fn distance_bucket(d: u64) -> usize {
    if d == 0 {
        0
    } else {
        (u64::BITS - d.leading_zeros()) as usize
    }
}

/// The measured reuse-distance histogram of one load site.
#[derive(Debug, Clone)]
pub struct SiteHistogram {
    /// Reuse counts per log₂ distance bucket.
    pub buckets: [u64; BUCKETS],
    /// First-touch accesses (no prior reference to the block).
    pub cold: u64,
}

impl Default for SiteHistogram {
    fn default() -> Self {
        SiteHistogram {
            buckets: [0; BUCKETS],
            cold: 0,
        }
    }
}

impl SiteHistogram {
    /// Total accesses recorded at this site.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cold + self.buckets.iter().sum::<u64>()
    }

    /// Accesses that miss in a fully-associative LRU cache of
    /// `cap_blocks` blocks. Exact for power-of-two capacities; a
    /// straddled bucket is charged fractionally (uniform within the
    /// bucket), matching the static model's scoring.
    #[must_use]
    pub fn misses(&self, cap_blocks: u64) -> f64 {
        let mut misses = self.cold as f64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            misses += n as f64 * bucket_miss_fraction(b, cap_blocks);
        }
        misses
    }

    /// Miss ratio at `cap_blocks`, or 0 with no accesses.
    #[must_use]
    pub fn miss_ratio(&self, cap_blocks: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.misses(cap_blocks) / total as f64
        }
    }
}

/// Fraction of bucket `b`'s distance range at or beyond `cap` blocks.
fn bucket_miss_fraction(b: usize, cap: u64) -> f64 {
    if cap == 0 {
        return 1.0;
    }
    if b == 0 {
        return 0.0;
    }
    let min_d = 1u64 << (b - 1);
    let max_d = (1u64 << b) - 1;
    if max_d < cap {
        0.0
    } else if min_d >= cap {
        1.0
    } else {
        (max_d + 1 - cap) as f64 / (max_d + 1 - min_d) as f64
    }
}

/// Recency stamps are compacted when the clock reaches this bound, so
/// the Fenwick tree stays a fixed size no matter how long the run is.
const STAMP_CAP: usize = 1 << 20;

/// The shadow LRU stack plus every site's histogram. Attached to a
/// run via `RunConfig::reuse_profile`; collected from
/// `SimOutput::reuse`.
#[derive(Debug, Clone)]
pub struct ReuseMeasurement {
    line_shift: u32,
    /// Per-site histograms, indexed by instruction index.
    sites: Vec<SiteHistogram>,
    /// block → its current recency stamp (1-indexed).
    stamp_of: HashMap<u32, usize>,
    /// stamp → block (`u32::MAX` marks a superseded stamp).
    block_of: Vec<u32>,
    /// Fenwick tree over stamps: one set bit per live block.
    bit: Vec<u32>,
    /// Live blocks (= distinct blocks ever touched, post-compaction).
    live: usize,
    clock: usize,
}

const DEAD: u32 = u32::MAX;

impl ReuseMeasurement {
    /// A fresh measurement for a program of `insts` instructions and
    /// the given cache-line size in bytes (must be a power of two).
    #[must_use]
    pub fn new(insts: usize, line_bytes: u32) -> Self {
        debug_assert!(line_bytes.is_power_of_two());
        ReuseMeasurement {
            line_shift: line_bytes.trailing_zeros(),
            sites: vec![SiteHistogram::default(); insts],
            stamp_of: HashMap::new(),
            block_of: vec![DEAD; STAMP_CAP + 1],
            bit: vec![0; STAMP_CAP + 1],
            live: 0,
            clock: 0,
        }
    }

    fn bit_add(&mut self, mut i: usize, delta: i32) {
        while i <= STAMP_CAP {
            self.bit[i] = self.bit[i].wrapping_add_signed(delta);
            i += i & i.wrapping_neg();
        }
    }

    fn bit_prefix(&self, mut i: usize) -> u32 {
        let mut sum = 0;
        while i > 0 {
            sum += self.bit[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Records one access. `at` is the instruction index; only loads
    /// (`store == false`) contribute histogram entries, but every
    /// access refreshes its block's recency.
    pub fn record(&mut self, at: usize, addr: u32, store: bool) {
        let block = addr >> self.line_shift;
        match self.stamp_of.get(&block).copied() {
            Some(old) => {
                // Live blocks with a stamp newer than `old` are
                // exactly the distinct blocks touched since.
                let d = self.live as u64 - u64::from(self.bit_prefix(old));
                if !store {
                    self.sites[at].buckets[distance_bucket(d)] += 1;
                }
                self.bit_add(old, -1);
                self.block_of[old] = DEAD;
                self.live -= 1;
            }
            None => {
                if !store {
                    self.sites[at].cold += 1;
                }
            }
        }
        if self.clock == STAMP_CAP {
            self.compact();
        }
        self.clock += 1;
        self.block_of[self.clock] = block;
        self.stamp_of.insert(block, self.clock);
        self.bit_add(self.clock, 1);
        self.live += 1;
    }

    /// Renumbers live stamps to `1..=live`, preserving recency order,
    /// and rebuilds the Fenwick tree.
    fn compact(&mut self) {
        let mut next = 0;
        self.bit.fill(0);
        for s in 1..=self.clock {
            let block = self.block_of[s];
            if block == DEAD {
                continue;
            }
            next += 1;
            self.block_of[next] = block;
            self.stamp_of.insert(block, next);
        }
        for s in next + 1..=self.clock {
            self.block_of[s] = DEAD;
        }
        debug_assert_eq!(next, self.live);
        for s in 1..=next {
            self.bit_add(s, 1);
        }
        self.clock = next;
    }

    /// The histogram of load site `at`.
    #[must_use]
    pub fn site(&self, at: usize) -> &SiteHistogram {
        &self.sites[at]
    }

    /// Every site histogram, indexed by instruction index.
    #[must_use]
    pub fn sites(&self) -> &[SiteHistogram] {
        &self.sites
    }

    /// Load sites with at least one recorded access, in index order.
    #[must_use]
    pub fn active_sites(&self) -> Vec<usize> {
        (0..self.sites.len())
            .filter(|&i| self.sites[i].total() > 0)
            .collect()
    }

    /// Aggregate miss ratio over every site at `cap_blocks`, or 0
    /// with no recorded loads.
    #[must_use]
    pub fn aggregate_miss_ratio(&self, cap_blocks: u64) -> f64 {
        let total: u64 = self.sites.iter().map(SiteHistogram::total).sum();
        if total == 0 {
            return 0.0;
        }
        let misses: f64 = self.sites.iter().map(|s| s.misses(cap_blocks)).sum();
        misses / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_matches_the_static_side() {
        assert_eq!(distance_bucket(0), 0);
        assert_eq!(distance_bucket(1), 1);
        assert_eq!(distance_bucket(3), 2);
        assert_eq!(distance_bucket(4), 3);
        assert_eq!(distance_bucket(255), 8);
        assert_eq!(distance_bucket(256), 9);
    }

    #[test]
    fn distances_count_distinct_blocks() {
        let mut m = ReuseMeasurement::new(4, 32);
        // A, B, C, A: A's reuse skipped B and C → distance 2.
        m.record(0, 0x000, false);
        m.record(0, 0x020, false);
        m.record(0, 0x040, false);
        m.record(1, 0x000, false);
        assert_eq!(m.site(0).cold, 3);
        assert_eq!(m.site(1).buckets[distance_bucket(2)], 1);
        // Same-block re-touch is distance 0.
        m.record(1, 0x004, false);
        assert_eq!(m.site(1).buckets[0], 1);
    }

    #[test]
    fn duplicate_intervening_blocks_count_once() {
        let mut m = ReuseMeasurement::new(2, 32);
        // A, B, B, B, A: only one distinct block between → distance 1.
        m.record(0, 0x000, false);
        for _ in 0..3 {
            m.record(0, 0x020, false);
        }
        m.record(1, 0x000, false);
        assert_eq!(m.site(1).buckets[1], 1);
    }

    #[test]
    fn stores_refresh_recency_without_histogram_entries() {
        let mut m = ReuseMeasurement::new(2, 32);
        m.record(0, 0x000, false);
        m.record(0, 0x020, false);
        // The store touches A again, so the next load of A is near.
        m.record(1, 0x000, true);
        m.record(0, 0x000, false);
        assert_eq!(m.site(1).total(), 0, "stores record nothing");
        assert_eq!(m.site(0).buckets[0], 1, "store refreshed recency");
    }

    #[test]
    fn inclusion_prices_every_geometry_from_one_run() {
        let mut m = ReuseMeasurement::new(1, 32);
        // Walk 512 blocks twice: second pass reuses at distance 511.
        for pass in 0..2 {
            for b in 0u32..512 {
                let _ = pass;
                m.record(0, b * 32, false);
            }
        }
        let s = m.site(0);
        assert_eq!(s.cold, 512);
        // 512-block reuses: distance 511 → bucket 9.
        assert_eq!(s.buckets[9], 512);
        // 256-block cache (8 KiB / 32 B): every reuse misses.
        assert!((s.miss_ratio(256) - 1.0).abs() < 1e-12);
        // 2048-block cache (64 KiB): only the cold pass misses.
        assert!((s.miss_ratio(2048) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compaction_preserves_distances() {
        let mut m = ReuseMeasurement::new(2, 32);
        // Two hot blocks re-referenced across enough traffic to force
        // several compactions.
        for i in 0..(STAMP_CAP * 2 + 17) {
            m.record(0, (i as u32 % 7) * 32, false);
        }
        m.record(1, 0x000, false);
        let s = m.site(1);
        // 7 live blocks; block 0 was most recently at most 6 away.
        assert_eq!(s.total(), 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), 1);
        let hit_small = s.miss_ratio(8);
        assert_eq!(hit_small, 0.0, "distance must stay ≤ 6: {s:?}");
    }
}
