//! The simulated data memory: three arenas (static data, heap, stack)
//! decoded by address range, matching [`dl_mips::layout`].

use std::fmt;

use dl_mips::layout::{DATA_BASE, HEAP_BASE, STACK_TOP};

/// Default stack arena size (4 MiB).
pub const STACK_SIZE: u32 = 4 * 1024 * 1024;

/// Default heap arena capacity (64 MiB address space; committed lazily).
pub const HEAP_CAP: u32 = 64 * 1024 * 1024;

/// Lowest valid stack address.
pub const STACK_LIMIT: u32 = STACK_TOP + 16 - STACK_SIZE;

/// A faulting memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Address not inside any mapped arena (null/text/unallocated heap).
    Unmapped(u32),
    /// Address not aligned to the access width.
    Misaligned(u32),
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped(a) => write!(f, "unmapped address {a:#010x}"),
            MemFault::Misaligned(a) => write!(f, "misaligned access at {a:#010x}"),
        }
    }
}

impl std::error::Error for MemFault {}

/// Simulated memory: static data, a bump-allocated heap, and a
/// fixed-size stack.
///
/// # Example
///
/// ```
/// use dl_mips::layout::DATA_BASE;
/// let mut m = dl_sim::mem::Memory::new(&[0u8; 64]);
/// m.write_u32(DATA_BASE + 8, 0xdead_beef).unwrap();
/// assert_eq!(m.read_u32(DATA_BASE + 8).unwrap(), 0xdead_beef);
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    heap: Vec<u8>,
    heap_brk: u32,
    stack: Vec<u8>,
}

impl Memory {
    /// Creates memory with the given initial static-data image.
    #[must_use]
    pub fn new(data_image: &[u8]) -> Self {
        // The static arena always covers the full gp-reachable window
        // (gp sits 32 KiB in; signed 16-bit offsets reach 32 KiB past
        // it), plus slack beyond the image for zeroed globals.
        let mut data = data_image.to_vec();
        data.resize(data.len().max(0x1_0000) + 64, 0);
        Memory {
            data,
            heap: Vec::new(),
            heap_brk: HEAP_BASE,
            stack: vec![0; STACK_SIZE as usize],
        }
    }

    /// Allocates `size` bytes on the heap (8-byte aligned), returning
    /// the block address. This backs the `malloc` syscall.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] if the heap is exhausted.
    pub fn malloc(&mut self, size: u32) -> Result<u32, MemFault> {
        let aligned = size.max(1).div_ceil(8) * 8;
        let addr = self.heap_brk;
        let new_brk = addr
            .checked_add(aligned)
            .filter(|&b| b <= HEAP_BASE + HEAP_CAP)
            .ok_or(MemFault::Unmapped(addr))?;
        self.heap_brk = new_brk;
        self.heap.resize((new_brk - HEAP_BASE) as usize, 0);
        Ok(addr)
    }

    /// Current heap break (first unallocated heap address).
    #[must_use]
    pub fn heap_brk(&self) -> u32 {
        self.heap_brk
    }

    /// Builds a [`LineWindow`] over `[start, start + len)` if that
    /// whole span is 4-aligned and mapped inside a single arena;
    /// otherwise returns the invalid window (every lookup misses).
    ///
    /// The window stays valid for the lifetime of this `Memory`:
    /// arenas only ever grow (`malloc` extends the heap; data and
    /// stack are fixed at construction), so an offset range proven
    /// in-bounds here remains in-bounds forever, and lookups
    /// re-borrow the arena on every access so a reallocated heap
    /// buffer is re-read through the fresh reference.
    #[must_use]
    pub fn line_window(&self, start: u32, len: u32) -> LineWindow {
        if len < 4 || !start.is_multiple_of(4) {
            return LineWindow::INVALID;
        }
        let (bytes, base, arena) = if start >= STACK_LIMIT {
            (&self.stack, STACK_LIMIT, Arena::Stack)
        } else if start >= HEAP_BASE {
            (&self.heap, HEAP_BASE, Arena::Heap)
        } else if start >= DATA_BASE {
            (&self.data, DATA_BASE, Arena::Data)
        } else {
            return LineWindow::INVALID;
        };
        let off = (start - base) as usize;
        let Some(end) = off.checked_add(len as usize) else {
            return LineWindow::INVALID;
        };
        if end > bytes.len() {
            return LineWindow::INVALID;
        }
        LineWindow {
            base: start,
            max: len - 4,
            arena,
            off,
        }
    }

    #[inline]
    fn slot(&mut self, addr: u32, len: u32) -> Result<&mut [u8], MemFault> {
        let (arena, base): (&mut Vec<u8>, u32) = if addr >= STACK_LIMIT {
            (&mut self.stack, STACK_LIMIT)
        } else if addr >= HEAP_BASE {
            (&mut self.heap, HEAP_BASE)
        } else if addr >= DATA_BASE {
            (&mut self.data, DATA_BASE)
        } else {
            return Err(MemFault::Unmapped(addr));
        };
        let off = (addr - base) as usize;
        let end = off + len as usize;
        if end > arena.len() {
            return Err(MemFault::Unmapped(addr));
        }
        Ok(&mut arena[off..end])
    }

    #[inline]
    fn check_align(addr: u32, len: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(len) {
            Err(MemFault::Misaligned(addr))
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses.
    #[inline]
    pub fn read_u8(&mut self, addr: u32) -> Result<u8, MemFault> {
        Ok(self.slot(addr, 1)?[0])
    }

    /// Reads a 16-bit little-endian value.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    #[inline]
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, MemFault> {
        Self::check_align(addr, 2)?;
        let s = self.slot(addr, 2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a 32-bit little-endian value.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    #[inline]
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemFault> {
        Self::check_align(addr, 4)?;
        let s = self.slot(addr, 4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        self.slot(addr, 1)?[0] = v;
        Ok(())
    }

    /// Writes a 16-bit little-endian value.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        Self::check_align(addr, 2)?;
        self.slot(addr, 2)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a 32-bit little-endian value.
    ///
    /// # Errors
    ///
    /// Faults on unmapped or misaligned addresses.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        Self::check_align(addr, 4)?;
        self.slot(addr, 4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }
}

/// Which arena a [`LineWindow`] points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arena {
    Stack,
    Heap,
    Data,
}

/// A one-entry software TLB covering a single span of simulated
/// memory that [`Memory::line_window`] proved mapped, 4-aligned, and
/// contained in one arena.
///
/// Lookups hit only for 4-aligned word accesses inside the span;
/// everything else misses and must take the checked
/// [`Memory::read_u32`] / [`Memory::write_u32`] path. A hit reads or
/// writes the arena directly with the bounds check elided.
///
/// The window stores an arena tag plus a byte offset rather than a
/// raw pointer: re-borrowing the arena on every access costs one
/// perfectly predicted branch, keeps the type safe to hold across
/// arbitrary machine steps (a reallocated heap buffer is re-read
/// through the fresh reference), and measures no slower than a
/// cached-pointer variant on the hot path.
///
/// The invalid window has `base = 1`: any 4-aligned address then
/// yields a delta congruent to 3 mod 4, so the alignment test
/// rejects every lookup.
#[derive(Debug, Clone, Copy)]
pub struct LineWindow {
    /// Simulated address of the first window byte (4-aligned), or 1
    /// for the invalid window.
    base: u32,
    /// Largest valid byte delta from `base` (span length minus 4).
    max: u32,
    arena: Arena,
    /// Byte offset of `base` within the arena.
    off: usize,
}

impl LineWindow {
    /// The window that misses every lookup.
    pub const INVALID: LineWindow = LineWindow {
        base: 1,
        max: 0,
        arena: Arena::Stack,
        off: 0,
    };

    /// Simulated address of the first window byte.
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Reads a 32-bit little-endian word through the window, or
    /// `None` if `addr` is outside the span or misaligned.
    #[inline(always)]
    #[must_use]
    pub fn read(&self, mem: &Memory, addr: u32) -> Option<u32> {
        let d = addr.wrapping_sub(self.base);
        if d <= self.max && d & 3 == 0 {
            let off = self.off + d as usize;
            let bytes: &[u8] = match self.arena {
                Arena::Stack => &mem.stack,
                Arena::Heap => &mem.heap,
                Arena::Data => &mem.data,
            };
            // SAFETY: `line_window` proved `off..off + max + 4` was
            // in-bounds of this arena, arenas never shrink, and
            // `d <= max` bounds the delta, so `off..off + 4` is
            // in-bounds.
            let b = unsafe { bytes.get_unchecked(off..off + 4) };
            Some(u32::from_le_bytes(b.try_into().unwrap()))
        } else {
            None
        }
    }

    /// Reads a 32-bit little-endian word through the window with the
    /// span and alignment checks elided.
    ///
    /// # Safety
    ///
    /// `addr` must be 4-aligned and inside the window span (the probe
    /// layer certifies both before taking this path: the group's
    /// same-line proof bounds every member address inside the
    /// window's line, and the aligned-span check covers alignment).
    #[inline(always)]
    #[must_use]
    pub unsafe fn read_unchecked(&self, mem: &Memory, addr: u32) -> u32 {
        let off = self.off + addr.wrapping_sub(self.base) as usize;
        let bytes: &[u8] = match self.arena {
            Arena::Stack => &mem.stack,
            Arena::Heap => &mem.heap,
            Arena::Data => &mem.data,
        };
        // SAFETY: in-bounds per the caller contract plus the
        // `line_window` invariant (arenas never shrink).
        let b = unsafe { bytes.get_unchecked(off..off + 4) };
        u32::from_le_bytes(b.try_into().unwrap())
    }

    /// Writes a 32-bit little-endian word through the window with the
    /// span and alignment checks elided.
    ///
    /// # Safety
    ///
    /// Same contract as [`LineWindow::read_unchecked`].
    #[inline(always)]
    pub unsafe fn write_unchecked(&self, mem: &mut Memory, addr: u32, v: u32) {
        let off = self.off + addr.wrapping_sub(self.base) as usize;
        let bytes: &mut [u8] = match self.arena {
            Arena::Stack => &mut mem.stack,
            Arena::Heap => &mut mem.heap,
            Arena::Data => &mut mem.data,
        };
        // SAFETY: in-bounds per the caller contract plus the
        // `line_window` invariant.
        let b = unsafe { bytes.get_unchecked_mut(off..off + 4) };
        b.copy_from_slice(&v.to_le_bytes());
    }

    /// Writes a 32-bit little-endian word through the window;
    /// returns `false` (leaving memory untouched) if `addr` is
    /// outside the span or misaligned.
    #[inline(always)]
    #[must_use]
    pub fn write(&self, mem: &mut Memory, addr: u32, v: u32) -> bool {
        let d = addr.wrapping_sub(self.base);
        if d <= self.max && d & 3 == 0 {
            let off = self.off + d as usize;
            let bytes: &mut [u8] = match self.arena {
                Arena::Stack => &mut mem.stack,
                Arena::Heap => &mut mem.heap,
                Arena::Data => &mut mem.data,
            };
            // SAFETY: same invariant as `read`.
            let b = unsafe { bytes.get_unchecked_mut(off..off + 4) };
            b.copy_from_slice(&v.to_le_bytes());
            true
        } else {
            false
        }
    }
}

impl Default for LineWindow {
    fn default() -> Self {
        LineWindow::INVALID
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_read_write() {
        let mut m = Memory::new(&[1, 2, 3, 4]);
        assert_eq!(m.read_u8(DATA_BASE).unwrap(), 1);
        assert_eq!(m.read_u32(DATA_BASE).unwrap(), 0x04030201);
        m.write_u16(DATA_BASE + 2, 0xbeef).unwrap();
        assert_eq!(m.read_u16(DATA_BASE + 2).unwrap(), 0xbeef);
    }

    #[test]
    fn stack_read_write() {
        let mut m = Memory::new(&[]);
        let sp = STACK_TOP - 16;
        m.write_u32(sp, 77).unwrap();
        assert_eq!(m.read_u32(sp).unwrap(), 77);
    }

    #[test]
    fn null_faults() {
        let mut m = Memory::new(&[]);
        assert_eq!(m.read_u32(0), Err(MemFault::Unmapped(0)));
        assert_eq!(m.read_u8(0x0040_0000), Err(MemFault::Unmapped(0x0040_0000)));
    }

    #[test]
    fn misalignment_faults() {
        let mut m = Memory::new(&[0; 16]);
        assert_eq!(
            m.read_u32(DATA_BASE + 2),
            Err(MemFault::Misaligned(DATA_BASE + 2))
        );
        assert_eq!(
            m.write_u16(DATA_BASE + 1, 1),
            Err(MemFault::Misaligned(DATA_BASE + 1))
        );
    }

    #[test]
    fn heap_grows_via_malloc() {
        let mut m = Memory::new(&[]);
        let a = m.malloc(10).unwrap();
        assert_eq!(a, HEAP_BASE);
        let b = m.malloc(1).unwrap();
        assert_eq!(b, HEAP_BASE + 16); // 10 rounds up to 16
        m.write_u32(b, 5).unwrap();
        assert_eq!(m.read_u32(b).unwrap(), 5);
        // Past the brk faults.
        assert!(m.read_u32(m.heap_brk()).is_err());
    }

    #[test]
    fn unallocated_heap_faults() {
        let mut m = Memory::new(&[]);
        assert!(m.read_u32(HEAP_BASE).is_err());
    }

    #[test]
    fn malloc_zero_still_unique() {
        let mut m = Memory::new(&[]);
        let a = m.malloc(0).unwrap();
        let b = m.malloc(0).unwrap();
        assert_ne!(a, b);
    }
}
