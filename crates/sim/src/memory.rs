//! Configurable memory system: replacement policies, an optional
//! second cache level, and a PC-indexed stride prefetcher.
//!
//! The paper evaluates delinquent-load identification against exactly
//! one memory system — a split-L1 LRU data cache. This module makes
//! the simulated memory system a matrix instead of a point:
//!
//! - **Replacement** ([`Policy`]): true LRU (the default, unchanged),
//!   tree-PLRU, or random (seeded from [`crate::RunConfig::seed`], so
//!   runs stay deterministic across engines and worker counts).
//! - **Hierarchy** ([`L2Config`]): an optional unified L2 behind the
//!   L1, [`Inclusion::Inclusive`] (L2 eviction back-invalidates L1) or
//!   [`Inclusion::Exclusive`] (levels hold disjoint lines; L2 hits
//!   migrate to L1, L1 victims fall back to L2).
//! - **Prefetch** ([`StridePrefetchConfig`]): a 64-entry PC-indexed
//!   stride table trained on every demand load; once a site's stride
//!   is confirmed, `degree` blocks ahead are filled with a distinct
//!   *prefetch* fill reason, letting the miss observatory attribute
//!   demand hits on prefetched lines as "hidden by prefetch" instead
//!   of folding them into ordinary hits.
//!
//! Fast-path contract: a demand access that hits its set's MRU way
//! changes no replacement state under *any* policy (LRU: the way is
//! already at the front of the order; tree-PLRU: the path bits already
//! point away from the way that was touched last; random: hits touch
//! no state), and it cannot interact with the L2 (no miss, no victim).
//! The block engine's one-compare MRU probe therefore stays valid for
//! every policy and hierarchy; only the stride prefetcher — which must
//! observe every demand load to train — forces the slow path.

use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

use dl_testkit::Rng;

use crate::cache::{Cache, CacheConfig, CacheProfile, MissClass};
use crate::stats::RunResult;

/// Which replacement policy every cache level runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// True LRU (the paper's model and the default).
    #[default]
    Lru,
    /// Tree-based pseudo-LRU: one binary tree of recency bits per set.
    Plru,
    /// Random victim selection via dl-testkit's xorshift64* PRNG,
    /// seeded from the run seed for cross-engine determinism.
    Random,
}

impl Policy {
    /// Stable lower-case name, matching the `--policy` spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Policy::Lru => "lru",
            Policy::Plru => "plru",
            Policy::Random => "random",
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(Policy::Lru),
            "plru" => Ok(Policy::Plru),
            "random" => Ok(Policy::Random),
            other => Err(format!(
                "unknown policy '{other}' (expected lru|plru|random)"
            )),
        }
    }
}

/// How the L2 relates to the L1's contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Inclusion {
    /// Every L1 line is also in L2; an L2 eviction back-invalidates
    /// the line from L1.
    #[default]
    Inclusive,
    /// Levels hold disjoint lines: an L2 hit migrates the line to L1
    /// (removing it from L2) and L1 victims are inserted into L2.
    Exclusive,
}

impl Inclusion {
    /// Stable short name (`"incl"` / `"excl"`), matching `--l2`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Inclusion::Inclusive => "incl",
            Inclusion::Exclusive => "excl",
        }
    }
}

impl fmt::Display for Inclusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Inclusion {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "incl" | "inclusive" => Ok(Inclusion::Inclusive),
            "excl" | "exclusive" => Ok(Inclusion::Exclusive),
            other => Err(format!("unknown inclusion '{other}' (expected incl|excl)")),
        }
    }
}

/// Geometry and inclusion policy of the optional L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct L2Config {
    /// The L2 geometry. Must share the L1's block size.
    pub cache: CacheConfig,
    /// Inclusive or exclusive with respect to the L1.
    pub inclusion: Inclusion,
}

impl L2Config {
    /// A `size_kb`-KiB L2 with the given associativity, 32-byte
    /// blocks, and inclusion policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::kb`]).
    #[must_use]
    pub fn kb(size_kb: u32, assoc: u32, inclusion: Inclusion) -> Self {
        L2Config {
            cache: CacheConfig::kb(size_kb, assoc),
            inclusion,
        }
    }
}

impl fmt::Display for L2Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB-{}w-{}",
            self.cache.size_bytes() / 1024,
            self.cache.assoc(),
            self.inclusion
        )
    }
}

impl FromStr for L2Config {
    type Err = String;

    /// Parses the `--l2` / `DL_L2` spelling: `KB[,ASSOC][,incl|excl]`
    /// (e.g. `64`, `64,8`, `64,8,excl`). Defaults: 8-way, inclusive.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(',');
        let kb = parts
            .next()
            .map(|p| p.trim().trim_end_matches("KB").trim_end_matches("kb"))
            .filter(|p| !p.is_empty())
            .ok_or_else(|| "empty --l2 spec".to_string())?;
        let kb: u32 = kb
            .parse()
            .map_err(|_| format!("bad L2 size '{kb}' (expected KB[,ASSOC][,incl|excl])"))?;
        let mut assoc = 8u32;
        let mut inclusion = Inclusion::Inclusive;
        for part in parts {
            let part = part.trim();
            if let Ok(a) = part.parse::<u32>() {
                assoc = a;
            } else {
                inclusion = part.parse()?;
            }
        }
        let cache =
            CacheConfig::new(kb * 1024, assoc, 32).map_err(|e| format!("bad L2 geometry: {e}"))?;
        Ok(L2Config { cache, inclusion })
    }
}

/// Stride-prefetcher knobs: how many blocks ahead to fetch once a
/// site's stride is confirmed. `degree == 0` disables the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StridePrefetchConfig {
    /// Prefetch distance in blocks per confirmed-stride load.
    pub degree: u32,
}

impl StridePrefetchConfig {
    /// A prefetcher issuing `degree` blocks ahead.
    #[must_use]
    pub fn degree(degree: u32) -> Self {
        StridePrefetchConfig { degree }
    }
}

/// The full memory-system configuration carried by
/// [`crate::RunConfig::memory`]. The default (`lru`, no L2, no
/// prefetch) is byte-for-byte the paper's original single-L1 model
/// and keeps the block engine's fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemoryConfig {
    /// Replacement policy applied to every level.
    pub policy: Policy,
    /// Optional L2 behind the L1.
    pub l2: Option<L2Config>,
    /// Optional PC-indexed stride prefetcher.
    pub prefetch: Option<StridePrefetchConfig>,
}

impl MemoryConfig {
    /// True for the paper's original model (LRU, single L1, no
    /// prefetch) — the configuration whose labels and fast paths must
    /// stay byte-identical to the pre-matrix simulator.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == MemoryConfig::default()
    }
}

impl fmt::Display for MemoryConfig {
    /// Compact label used in tables and timing keys: `lru`,
    /// `plru+l2:512KB-8w-excl`, `random+pf2`, …
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.policy)?;
        if let Some(l2) = &self.l2 {
            write!(f, "+l2:{l2}")?;
        }
        if let Some(pf) = &self.prefetch {
            write!(f, "+pf{}", pf.degree)?;
        }
        Ok(())
    }
}

/// Per-set replacement state: records recency on `touch`, chooses an
/// eviction victim when every way is valid.
///
/// The cache consults implementations only off the MRU fast path: an
/// access that hits its set's MRU way is answered before any policy
/// code runs, which is sound because `touch` of the most recently
/// touched way is a no-op for every implementation here (LRU keeps a
/// fused search/recency representation — a per-set MRU-first way
/// permutation inside [`Cache`] — rather than this trait, for speed;
/// its front way is by definition already at the front).
pub trait ReplacementPolicy {
    /// Records an access (hit or fill) to `way` of `set`.
    fn touch(&mut self, set: usize, assoc: usize, way: usize);

    /// Chooses the way to evict from `set`. Called only when every
    /// way holds a valid line — invalid ways are always filled first.
    fn victim(&mut self, set: usize, assoc: usize) -> usize;
}

/// Tree-based pseudo-LRU: `assoc - 1` recency bits per set arranged
/// as a binary heap (node `i`'s children are `2i` and `2i+1`; bit 0
/// steers left, bit 1 right). A touch points every bit on the way's
/// root path away from it; the victim walk follows the bits down.
#[derive(Debug, Clone)]
pub struct TreePlru {
    bits: Vec<u64>,
}

impl TreePlru {
    /// Zeroed recency bits for `sets` sets of `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `assoc > 64` (the per-set bits are packed in a u64).
    #[must_use]
    pub fn new(sets: usize, assoc: u32) -> Self {
        assert!(assoc <= 64, "tree-PLRU supports at most 64 ways");
        TreePlru {
            bits: vec![0; sets],
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn touch(&mut self, set: usize, assoc: usize, way: usize) {
        let bits = &mut self.bits[set];
        let mut node = way + assoc;
        while node > 1 {
            let parent = node / 2;
            // Point the parent at the sibling (away from `node`).
            if node == 2 * parent {
                *bits |= 1 << (parent - 1);
            } else {
                *bits &= !(1 << (parent - 1));
            }
            node = parent;
        }
    }

    fn victim(&mut self, set: usize, assoc: usize) -> usize {
        let bits = self.bits[set];
        let mut node = 1;
        while node < assoc {
            node = 2 * node + ((bits >> (node - 1)) & 1) as usize;
        }
        node - assoc
    }
}

/// Random replacement: victims drawn from dl-testkit's xorshift64*
/// PRNG. Hits draw nothing, and the MRU fast path never evicts, so
/// both engines consume the stream in the same order and runs are
/// deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct RandomEvict {
    rng: Rng,
    seed: u64,
}

impl RandomEvict {
    /// A policy drawing victims from `seed`'s xorshift64* stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomEvict {
            rng: Rng::new(seed),
            seed,
        }
    }

    /// Rewinds the PRNG to its initial seed (cache reset).
    pub fn reset(&mut self) {
        self.rng = Rng::new(self.seed);
    }
}

impl ReplacementPolicy for RandomEvict {
    fn touch(&mut self, _set: usize, _assoc: usize, _way: usize) {}

    fn victim(&mut self, _set: usize, assoc: usize) -> usize {
        self.rng.below(assoc as u64) as usize
    }
}

/// Salts folded into the run seed so each level's random-replacement
/// stream (and nothing else) is independent.
const L1_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
const L2_SEED_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// One PC-indexed stride-table entry.
#[derive(Debug, Clone, Copy)]
struct StrideEntry {
    /// Owning load site (`u32::MAX` = empty).
    site: u32,
    /// Last demand address the site issued.
    last: u32,
    /// Last observed address delta.
    stride: i32,
    /// Confirmation counter (saturating at 3; issue at >= 2).
    conf: u8,
}

const STRIDE_SLOTS: usize = 64;
const STRIDE_CONF_ISSUE: u8 = 2;
const STRIDE_CONF_MAX: u8 = 3;

/// The prefetcher's stride table: direct-mapped on the low bits of
/// the load-site index, tagged with the full site so aliasing resets
/// training instead of cross-polluting.
#[derive(Debug, Clone)]
struct StrideTable {
    entries: Vec<StrideEntry>,
    degree: u32,
}

impl StrideTable {
    fn new(degree: u32) -> Self {
        StrideTable {
            entries: vec![
                StrideEntry {
                    site: u32::MAX,
                    last: 0,
                    stride: 0,
                    conf: 0,
                };
                STRIDE_SLOTS
            ],
            degree,
        }
    }

    /// Trains on one demand load; returns `(stride, degree)` when the
    /// site's stride is confirmed and prefetches should issue.
    fn observe(&mut self, at: usize, addr: u32) -> Option<(i32, u32)> {
        let entry = &mut self.entries[at & (STRIDE_SLOTS - 1)];
        let site = at as u32;
        if entry.site != site {
            *entry = StrideEntry {
                site,
                last: addr,
                stride: 0,
                conf: 0,
            };
            return None;
        }
        let delta = addr.wrapping_sub(entry.last) as i32;
        if delta != 0 && delta == entry.stride {
            entry.conf = (entry.conf + 1).min(STRIDE_CONF_MAX);
        } else {
            entry.stride = delta;
            entry.conf = 0;
        }
        entry.last = addr;
        (entry.conf >= STRIDE_CONF_ISSUE).then_some((entry.stride, self.degree))
    }
}

/// Outcome of one demand access, as seen by the accounting hooks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    /// L1 hit?
    pub hit: bool,
    /// Hit on a line whose most recent fill was a prefetch — the miss
    /// the observatory attributes as "hidden by prefetch".
    pub hidden: bool,
}

/// Counters the memory system accumulates and flushes into the
/// [`RunResult`] when a run finalizes.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MemCounters {
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub prefetches_issued: u64,
    pub prefetch_fills: u64,
    pub prefetch_useful: u64,
}

/// The configured memory hierarchy owned by one
/// [`crate::cpu::Machine`]: L1 (always), optional L2, optional stride
/// prefetcher, plus the prefetch fill-reason set and level counters.
///
/// Both engines funnel every non-MRU demand access through
/// [`MemorySystem::demand_access`], so hierarchy state advances in an
/// identical order regardless of engine; the block engine's fast path
/// only ever skips accesses that provably change no state.
#[derive(Debug, Clone)]
pub(crate) struct MemorySystem {
    l1: Cache,
    l2: Option<Box<Cache>>,
    inclusion: Inclusion,
    stride: Option<Box<StrideTable>>,
    /// Blocks resident in L1 whose most recent fill was a prefetch.
    /// Demand misses overwrite the reason; demand hits consume it.
    prefetched: HashSet<u64>,
    /// Plain single-L1 fast configuration: no L2, no prefetcher of
    /// either kind. Gates the one branch the demand path adds.
    simple: bool,
    /// The configured replacement policy, kept for the block engine's
    /// shape dispatch (the policy itself lives inside the caches).
    policy: Policy,
    pub(crate) counters: MemCounters,
}

impl MemorySystem {
    /// Builds the hierarchy for one run. `legacy_prefetch` marks the
    /// site-list next-line prefetcher configured via
    /// [`crate::PrefetchConfig`], which files fills through this
    /// system as well.
    ///
    /// # Panics
    ///
    /// Panics if the L2 block size differs from the L1's.
    pub(crate) fn new(
        l1: CacheConfig,
        mem: &MemoryConfig,
        seed: u64,
        legacy_prefetch: bool,
    ) -> MemorySystem {
        let l2 = mem.l2.map(|l2cfg| {
            assert_eq!(
                l2cfg.cache.block_bytes(),
                l1.block_bytes(),
                "L1 and L2 must share a block size"
            );
            Box::new(Cache::with_policy(
                l2cfg.cache,
                mem.policy,
                seed ^ L2_SEED_SALT,
            ))
        });
        let stride = mem
            .prefetch
            .filter(|pf| pf.degree > 0)
            .map(|pf| Box::new(StrideTable::new(pf.degree)));
        let simple = l2.is_none() && stride.is_none() && !legacy_prefetch;
        MemorySystem {
            l1: Cache::with_policy(l1, mem.policy, seed ^ L1_SEED_SALT),
            l2,
            inclusion: mem.l2.map(|c| c.inclusion).unwrap_or_default(),
            stride,
            prefetched: HashSet::new(),
            simple,
            policy: mem.policy,
            counters: MemCounters::default(),
        }
    }

    /// The L1, for tests and configuration queries.
    #[must_use]
    pub(crate) fn l1(&self) -> &Cache {
        &self.l1
    }

    /// True when this configuration requires the block engine's slow
    /// path: the stride prefetcher must see every demand load to
    /// train, including MRU hits the fast path would skip.
    pub(crate) fn forces_slow(&self) -> bool {
        self.stride.is_some()
    }

    /// True when the plain single-L1 demand path applies (no L2, no
    /// prefetcher of either kind). Drives the block engine's shape
    /// dispatch together with [`MemorySystem::policy`].
    pub(crate) fn is_simple(&self) -> bool {
        self.simple
    }

    /// The configured replacement policy.
    pub(crate) fn policy(&self) -> Policy {
        self.policy
    }

    /// See [`Cache::hot_params`].
    #[inline]
    pub(crate) fn hot_params(&self) -> u32 {
        self.l1.hot_params()
    }

    /// See [`Cache::mru_blocks`].
    #[inline(always)]
    pub(crate) fn mru_blocks(&self) -> &[u64] {
        self.l1.mru_blocks()
    }

    /// Enables L1 miss classification (see [`Cache::enable_profiling`]).
    pub(crate) fn enable_profiling(&mut self) {
        self.l1.enable_profiling();
    }

    /// See [`Cache::last_miss_class`].
    pub(crate) fn last_miss_class(&self) -> Option<MissClass> {
        self.l1.last_miss_class()
    }

    /// See [`Cache::profile`].
    pub(crate) fn profile(&self) -> Option<&CacheProfile> {
        self.l1.profile()
    }

    /// See [`Cache::take_profile`].
    pub(crate) fn take_profile(&mut self) -> Option<CacheProfile> {
        self.l1.take_profile()
    }

    /// One demand access (load or store). The plain configuration is
    /// exactly the old single-cache probe; richer configurations take
    /// the full hierarchy walk.
    #[inline]
    pub(crate) fn demand_access(&mut self, addr: u32) -> Access {
        if self.simple {
            return Access {
                hit: self.l1.access(addr),
                hidden: false,
            };
        }
        self.demand_access_full(addr)
    }

    // Shape-specialized demand entry points for the block engine: the
    // caller has statically matched the configuration (plain L1 of a
    // known policy, or the two-level walk), so the `simple` test and
    // the generic `Cache::access` MRU re-probe both disappear. State
    // and counter updates are identical to [`MemorySystem::demand_access`].

    /// Plain-L1/LRU non-MRU demand access. Returns `true` on hit.
    pub(crate) fn plain_access_lru(&mut self, addr: u32) -> bool {
        debug_assert!(self.simple);
        self.l1.access_nonmru_lru(addr)
    }

    /// Plain-L1/tree-PLRU non-MRU demand access. Returns `true` on hit.
    pub(crate) fn plain_access_plru(&mut self, addr: u32) -> bool {
        debug_assert!(self.simple);
        self.l1.access_nonmru_plru(addr)
    }

    /// Plain-L1/random non-MRU demand access. Returns `true` on hit.
    pub(crate) fn plain_access_random(&mut self, addr: u32) -> bool {
        debug_assert!(self.simple);
        self.l1.access_nonmru_random(addr)
    }

    /// Demand access under a non-trivial configuration: consult the
    /// prefetch fill-reason set on hits, walk the L2 on misses.
    pub(crate) fn demand_access_full(&mut self, addr: u32) -> Access {
        let block = u64::from(addr >> self.l1.hot_params());
        let (hit, victim) = self.l1.access_with_victim(addr);
        if hit {
            let hidden = self.prefetched.remove(&block);
            if hidden {
                self.counters.prefetch_useful += 1;
            }
            return Access { hit: true, hidden };
        }
        // The L1 fill just performed is demand-reasoned: clear any
        // stale prefetch tag left from an earlier eviction.
        self.prefetched.remove(&block);
        self.walk_l2(block, victim);
        Access {
            hit: false,
            hidden: false,
        }
    }

    /// L2 side of an L1 miss fill (demand or prefetch): one L2 lookup
    /// plus inclusion maintenance.
    fn walk_l2(&mut self, block: u64, l1_victim: Option<u64>) {
        let Some(l2) = self.l2.as_deref_mut() else {
            return;
        };
        match self.inclusion {
            Inclusion::Inclusive => {
                // Fill flows through both levels; an L2 eviction
                // forces the line out of L1 too.
                let addr = (block as u32) << self.l1.hot_params();
                let (hit, evicted) = l2.access_with_victim(addr);
                if hit {
                    self.counters.l2_hits += 1;
                } else {
                    self.counters.l2_misses += 1;
                }
                if let Some(v) = evicted {
                    self.l1.invalidate_block(v);
                    self.prefetched.remove(&v);
                }
            }
            Inclusion::Exclusive => {
                // An L2 hit migrates the line up (it now lives only in
                // L1); the L1 victim falls back into the L2.
                if l2.extract_block(block) {
                    self.counters.l2_hits += 1;
                } else {
                    self.counters.l2_misses += 1;
                }
                if let Some(v) = l1_victim {
                    l2.insert_block(v);
                }
            }
        }
    }

    /// Files one prefetch probe: counts the issue, and on an L1 miss
    /// fills the block with the *prefetch* reason (walking the L2 like
    /// any other fill).
    pub(crate) fn prefetch_fill(&mut self, addr: u32) {
        self.counters.prefetches_issued += 1;
        let block = u64::from(addr >> self.l1.hot_params());
        let (hit, victim) = self.l1.access_with_victim(addr);
        if hit {
            return;
        }
        self.counters.prefetch_fills += 1;
        self.prefetched.insert(block);
        self.walk_l2(block, victim);
    }

    /// Trains the stride table on one demand load and issues the
    /// confirmed-stride prefetches. No-op when the prefetcher is off.
    pub(crate) fn stride_observe(&mut self, at: usize, addr: u32) {
        let Some(stride) = self.stride.as_deref_mut() else {
            return;
        };
        let Some((step, degree)) = stride.observe(at, addr) else {
            return;
        };
        for k in 1..=i64::from(degree) {
            let target = i64::from(addr) + i64::from(step) * k;
            let Ok(target) = u32::try_from(target) else {
                break; // ran off the address space; stop the burst
            };
            self.prefetch_fill(target);
        }
    }

    /// Flushes the accumulated level/prefetch counters into the run's
    /// result. Called once when a run finalizes.
    pub(crate) fn flush_into(&self, result: &mut RunResult) {
        result.prefetches_issued += self.counters.prefetches_issued;
        result.l2_hits = self.counters.l2_hits;
        result.l2_misses = self.counters.l2_misses;
        result.prefetch_fills = self.counters.prefetch_fills;
        result.prefetch_useful = self.counters.prefetch_useful;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_and_inclusion_parse_round_trip() {
        for p in [Policy::Lru, Policy::Plru, Policy::Random] {
            assert_eq!(p.name().parse::<Policy>().unwrap(), p);
        }
        for i in [Inclusion::Inclusive, Inclusion::Exclusive] {
            assert_eq!(i.name().parse::<Inclusion>().unwrap(), i);
        }
        assert!("clock".parse::<Policy>().is_err());
    }

    #[test]
    fn l2_spec_parses_sizes_assoc_and_inclusion() {
        let l2: L2Config = "64".parse().unwrap();
        assert_eq!(l2.cache.size_bytes(), 64 * 1024);
        assert_eq!(l2.cache.assoc(), 8);
        assert_eq!(l2.inclusion, Inclusion::Inclusive);
        let l2: L2Config = "128,4,excl".parse().unwrap();
        assert_eq!(l2.cache.size_bytes(), 128 * 1024);
        assert_eq!(l2.cache.assoc(), 4);
        assert_eq!(l2.inclusion, Inclusion::Exclusive);
        let l2: L2Config = "256KB,16".parse().unwrap();
        assert_eq!(l2.cache.assoc(), 16);
        assert!("".parse::<L2Config>().is_err());
        assert!("7".parse::<L2Config>().is_err()); // not a power of two
    }

    #[test]
    fn memory_config_labels() {
        assert_eq!(MemoryConfig::default().to_string(), "lru");
        assert!(MemoryConfig::default().is_default());
        let m = MemoryConfig {
            policy: Policy::Plru,
            l2: Some(L2Config::kb(64, 8, Inclusion::Exclusive)),
            prefetch: Some(StridePrefetchConfig::degree(2)),
        };
        assert_eq!(m.to_string(), "plru+l2:64KB-8w-excl+pf2");
        assert!(!m.is_default());
    }

    #[test]
    fn plru_victim_follows_touch_history() {
        let mut p = TreePlru::new(1, 4);
        // Touch ways 0..3 in order; the victim walk must point at the
        // least recently protected subtree.
        for w in 0..4 {
            p.touch(0, 4, w);
        }
        // Last touch was way 3: root points left, left subtree points
        // at way 1's sibling — victim must not be way 3.
        let v = p.victim(0, 4);
        assert_ne!(v, 3);
        // Touching the victim repeatedly keeps moving protection.
        p.touch(0, 4, v);
        assert_ne!(p.victim(0, 4), v);
    }

    #[test]
    fn plru_touch_is_idempotent() {
        // The MRU fast-path contract: re-touching the most recently
        // touched way changes nothing.
        let mut a = TreePlru::new(1, 8);
        for w in [3usize, 5, 1, 6] {
            a.touch(0, 8, w);
        }
        let before = a.bits.clone();
        a.touch(0, 8, 6);
        assert_eq!(a.bits, before);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let mut a = RandomEvict::new(42);
        let mut b = RandomEvict::new(42);
        let sa: Vec<usize> = (0..32).map(|_| a.victim(0, 4)).collect();
        let sb: Vec<usize> = (0..32).map(|_| b.victim(0, 4)).collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|&w| w < 4));
        a.reset();
        let again: Vec<usize> = (0..32).map(|_| a.victim(0, 4)).collect();
        assert_eq!(again, sa);
    }

    #[test]
    fn stride_table_confirms_then_issues() {
        let mut t = StrideTable::new(2);
        assert_eq!(t.observe(4, 0x1000), None); // allocate
        assert_eq!(t.observe(4, 0x1020), None); // learn stride
        assert_eq!(t.observe(4, 0x1040), None); // conf 1
        assert_eq!(t.observe(4, 0x1060), Some((0x20, 2))); // conf 2: issue
        assert_eq!(t.observe(4, 0x1080), Some((0x20, 2)));
        // A stride break retrains.
        assert_eq!(t.observe(4, 0x9000), None);
        assert_eq!(t.observe(4, 0x9020), None);
    }

    #[test]
    fn stride_table_aliasing_resets_training() {
        let mut t = StrideTable::new(1);
        for (i, addr) in [(4usize, 0x1000u32), (4, 0x1020), (4, 0x1040)] {
            t.observe(i, addr);
        }
        // Site 68 aliases slot 4 (64-entry table) and steals it.
        assert_eq!(t.observe(68, 0x5000), None);
        // Site 4 must re-allocate from scratch.
        assert_eq!(t.observe(4, 0x1060), None);
        assert_eq!(t.observe(4, 0x1080), None);
        assert_eq!(t.observe(4, 0x10a0), None);
    }

    #[test]
    fn l2_inclusive_hits_after_l1_eviction() {
        // L1 8KB/4w, L2 64KB/8w inclusive: stream past L1 capacity,
        // then re-touch — L1 misses must hit in L2.
        let mem = MemoryConfig {
            policy: Policy::Lru,
            l2: Some(L2Config::kb(64, 8, Inclusion::Inclusive)),
            prefetch: None,
        };
        let mut ms = MemorySystem::new(CacheConfig::paper_baseline(), &mem, 1, false);
        let blocks = 16 * 1024 / 32; // 16KB working set: 2x L1, fits L2
        for i in 0..blocks {
            assert!(!ms.demand_access(0x2000_0000 + i * 32).hit);
        }
        let cold = ms.counters.l2_misses;
        assert_eq!(cold, u64::from(blocks));
        let before_hits = ms.counters.l2_hits;
        let mut l1_misses = 0;
        for i in 0..blocks {
            if !ms.demand_access(0x2000_0000 + i * 32).hit {
                l1_misses += 1;
            }
        }
        assert!(l1_misses > 0, "working set exceeds L1");
        assert_eq!(ms.counters.l2_hits - before_hits, l1_misses);
        assert_eq!(ms.counters.l2_misses, cold, "second pass fits L2");
    }

    #[test]
    fn l2_exclusive_migrates_lines_between_levels() {
        let mem = MemoryConfig {
            policy: Policy::Lru,
            l2: Some(L2Config::kb(64, 8, Inclusion::Exclusive)),
            prefetch: None,
        };
        let mut ms = MemorySystem::new(CacheConfig::paper_baseline(), &mem, 1, false);
        let blocks = 16 * 1024 / 32;
        for i in 0..blocks {
            ms.demand_access(0x2000_0000 + i * 32);
        }
        // Second pass: every L1 miss is an L2 hit (victims fell back).
        let (h0, m0) = (ms.counters.l2_hits, ms.counters.l2_misses);
        for i in 0..blocks {
            ms.demand_access(0x2000_0000 + i * 32);
        }
        assert!(ms.counters.l2_hits > h0);
        assert_eq!(ms.counters.l2_misses, m0, "second pass never misses L2");
    }

    #[test]
    fn prefetch_fills_hide_streaming_misses() {
        let mem = MemoryConfig {
            policy: Policy::Lru,
            l2: None,
            prefetch: Some(StridePrefetchConfig::degree(2)),
        };
        let mut ms = MemorySystem::new(CacheConfig::paper_baseline(), &mem, 1, false);
        let mut misses = 0u64;
        let mut hidden = 0u64;
        for i in 0..1024u32 {
            let addr = 0x2000_0000 + i * 32;
            let acc = ms.demand_access(addr);
            if !acc.hit {
                misses += 1;
            }
            if acc.hidden {
                hidden += 1;
            }
            ms.stride_observe(7, addr);
        }
        assert!(
            misses < 1024 / 2,
            "stride prefetch must hide most of a unit-stride stream ({misses} misses)"
        );
        assert!(hidden > 0, "hidden-by-prefetch hits must be attributed");
        assert_eq!(ms.counters.prefetch_useful, hidden);
        assert!(ms.counters.prefetch_fills >= hidden);
        assert!(ms.counters.prefetches_issued >= ms.counters.prefetch_fills);
    }

    #[test]
    fn default_config_is_simple_and_counts_nothing() {
        let mut ms = MemorySystem::new(
            CacheConfig::paper_baseline(),
            &MemoryConfig::default(),
            1,
            false,
        );
        for i in 0..256u32 {
            ms.demand_access(0x2000_0000 + i * 32);
            ms.stride_observe(3, 0x2000_0000 + i * 32);
        }
        let c = ms.counters;
        assert_eq!(
            (
                c.l2_hits,
                c.l2_misses,
                c.prefetches_issued,
                c.prefetch_fills,
                c.prefetch_useful
            ),
            (0, 0, 0, 0, 0)
        );
    }
}
