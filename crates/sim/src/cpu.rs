//! The functional CPU interpreter.
//!
//! Executes a [`Program`] instruction-by-instruction, feeding every
//! data access through the [`Cache`] model and recording per-PC
//! statistics into a [`RunResult`].

use std::collections::VecDeque;
use std::fmt;

use dl_mips::inst::Inst;
use dl_mips::layout::{self, GP_VALUE, STACK_TOP};
use dl_mips::program::Program;
use dl_mips::reg::Reg;

use crate::block::{self, BlockCache, BlockStats, Engine};
use crate::cache::CacheConfig;
use crate::mem::{LineWindow, MemFault, Memory};
use crate::memory::{MemoryConfig, MemorySystem, Policy};
use crate::observe::{MissObservatory, ObserveConfig};
use crate::reuse::ReuseMeasurement;
use crate::stats::RunResult;
use crate::trace::TraceRecord;

/// Syscall numbers recognized by the simulator (selected via `$v0`).
pub mod syscalls {
    /// Print `$a0` as a signed integer (captured in `RunResult::output`).
    pub const PRINT_INT: u32 = 1;
    /// Read the next input integer into `$v0` (0 when exhausted).
    pub const READ_INT: u32 = 5;
    /// Allocate `$a0` bytes on the heap; block address in `$v0`.
    pub const MALLOC: u32 = 9;
    /// Terminate with exit code `$a0`.
    pub const EXIT: u32 = 10;
    /// Pseudo-random value in `[0, $a0)` (or full range if `$a0 <= 0`)
    /// into `$v0`. Deterministic per seed.
    pub const RAND: u32 = 42;
}

/// A runtime fault that aborts simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// A memory access faulted at the given instruction index.
    Mem {
        /// Instruction index of the faulting access.
        at: usize,
        /// The underlying memory fault.
        fault: MemFault,
    },
    /// Division by zero.
    DivByZero {
        /// Instruction index of the division.
        at: usize,
    },
    /// An indirect jump left the text segment (and is not the halt
    /// sentinel).
    BadJump {
        /// Instruction index of the jump.
        at: usize,
        /// The bad target program counter.
        target: u32,
    },
    /// Unknown syscall number.
    BadSyscall {
        /// Instruction index of the syscall.
        at: usize,
        /// The unrecognized `$v0` value.
        number: u32,
    },
    /// The configured step limit was exceeded.
    StepLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Mem { at, fault } => write!(f, "memory fault at inst {at}: {fault}"),
            Trap::DivByZero { at } => write!(f, "division by zero at inst {at}"),
            Trap::BadJump { at, target } => {
                write!(f, "bad jump target {target:#010x} at inst {at}")
            }
            Trap::BadSyscall { at, number } => write!(f, "unknown syscall {number} at inst {at}"),
            Trap::StepLimit { limit } => write!(f, "step limit of {limit} instructions exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

/// A next-line prefetcher attached to selected static load sites —
/// the paper's motivating consumer of delinquent-load identification.
///
/// When a load at an instrumented site executes, the next `degree`
/// cache blocks after the accessed one are brought into the cache.
/// [`RunResult::prefetches_issued`] counts the overhead this incurs.
#[derive(Debug, Clone, Default)]
pub struct PrefetchConfig {
    /// Instruction indices of the loads to instrument (sorted or not).
    pub sites: Vec<usize>,
    /// Blocks prefetched ahead per triggering access (0 disables).
    pub degree: u32,
}

impl PrefetchConfig {
    /// Instrument the given sites with next-line (degree-1) prefetch.
    #[must_use]
    pub fn next_line(sites: Vec<usize>) -> Self {
        PrefetchConfig { sites, degree: 1 }
    }
}

/// Configuration for one simulated run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// L1 data-cache geometry.
    pub cache: CacheConfig,
    /// Memory-system shape beyond the L1 geometry: replacement
    /// policy, optional L2, optional stride prefetcher (see
    /// [`crate::memory`]). The default is the plain L1 LRU the paper
    /// evaluates.
    pub memory: MemoryConfig,
    /// Abort with [`Trap::StepLimit`] after this many instructions.
    pub max_steps: u64,
    /// Integers served to the `read_int` syscall, in order.
    pub input: Vec<i32>,
    /// Seed for the `rand` syscall.
    pub seed: u64,
    /// Optional prefetcher attached to selected load sites.
    pub prefetch: Option<PrefetchConfig>,
    /// Classify misses (compulsory/capacity/conflict) and collect
    /// per-set histograms into [`RunResult::cache_profile`] and
    /// per-site attribution into [`RunResult::load_miss_classes`].
    /// Costs a shadow-cache update per access; off by default.
    pub classify_misses: bool,
    /// Collect epoch-windowed per-load-site miss counts into
    /// [`SimOutput::observatory`] (see [`crate::observe`]). Routes the
    /// block engine through its instrumented path; off by default.
    pub observe: Option<ObserveConfig>,
    /// Measure per-load-site reuse-distance histograms over a shadow
    /// LRU stack into [`SimOutput::reuse`] (see [`crate::reuse`]) —
    /// the ground truth for the static reuse profiles. Routes the
    /// block engine through its instrumented path; off by default.
    pub reuse_profile: bool,
    /// Which interpreter core executes the run. Both produce identical
    /// results; see [`Engine`]. The default honours `DL_SIM_ENGINE`.
    pub engine: Engine,
    /// Enables the block engine's probe-elimination layer (decode-time
    /// same-line coalescing, the per-site line predictor, and the
    /// shape-specialized memory walk). Results are byte-identical
    /// either way — this is an escape hatch for perf triage and for
    /// the differential suites. The default honours `DL_PROBE_FAST`
    /// (`off`/`0`/`false`/`no` disables; anything else, or unset,
    /// enables).
    pub probe_fast: bool,
}

/// Resolves the `DL_PROBE_FAST` default for [`RunConfig::probe_fast`].
fn probe_fast_from_env() -> bool {
    match std::env::var("DL_PROBE_FAST") {
        Ok(v) => !matches!(
            v.to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cache: CacheConfig::default(),
            memory: MemoryConfig::default(),
            max_steps: 500_000_000,
            input: Vec::new(),
            seed: 0x5eed_1234_abcd_ef01,
            prefetch: None,
            classify_misses: false,
            observe: None,
            reuse_profile: false,
            engine: Engine::from_env(),
            probe_fast: probe_fast_from_env(),
        }
    }
}

/// Everything a finished run produced: the measurement record, the
/// memory trace (empty unless [`Machine::record_trace`] was called),
/// and block-cache stats (`None` under [`Engine::Step`]).
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The full measurement record.
    pub result: RunResult,
    /// Recorded memory accesses, in execution order.
    pub trace: Vec<TraceRecord>,
    /// Block-cache behaviour counters ([`Engine::Block`] only).
    pub block_stats: Option<BlockStats>,
    /// Epoch-windowed per-load-site miss counts (only when
    /// [`RunConfig::observe`] was set).
    pub observatory: Option<MissObservatory>,
    /// Measured reuse-distance histograms (only when
    /// [`RunConfig::reuse_profile`] was set).
    pub reuse: Option<ReuseMeasurement>,
}

/// The simulator state; use [`run`] unless you need single-stepping.
#[derive(Debug)]
pub struct Machine<'p> {
    pub(crate) program: &'p Program,
    pub(crate) regs: [u32; 32],
    pub(crate) pc: usize,
    pub(crate) halt_index: usize,
    pub(crate) mem: Memory,
    pub(crate) cache: MemorySystem,
    rng: u64,
    input: VecDeque<i32>,
    pub(crate) result: RunResult,
    pub(crate) finished: Option<i32>,
    // Which interpreter core run_* methods use.
    engine: Engine,
    // Per-instruction prefetch degree (0 = not instrumented).
    prefetch_degree: Vec<u32>,
    // When Some, every data access is recorded.
    trace: Option<Vec<TraceRecord>>,
    // When Some, every load access is windowed into miss epochs.
    observatory: Option<MissObservatory>,
    // When Some, every data access updates the shadow LRU stack.
    reuse: Option<ReuseMeasurement>,
    // Hot-path flags mirroring `trace`/`prefetch_degree`: data
    // accesses check one bool each instead of an Option walk and a
    // per-access Vec index.
    tracing: bool,
    has_prefetch: bool,
    classifying: bool,
    observing: bool,
    reusing: bool,
    // Stride prefetcher configured: every demand load trains the table.
    striding: bool,
    // Probe-elimination layer enabled (block engine fast path only).
    probe_fast: bool,
    // The per-site last-line predictor: pred[site] packs
    // (generation << 32) | line for the line the site's coalescing
    // group last certified as MRU. Empty unless the block engine runs
    // with probe elimination. `u64::MAX` can never match a live entry
    // (line numbers fit in 32 - block-shift bits), so it doubles as
    // the invalid pattern.
    pub(crate) line_pred: Box<[u64]>,
    // The predictor's global generation: bumped on every slow-path
    // (non-MRU) demand access, so a matching entry proves its line is
    // still the MRU of its set. See `Machine::bump_pred_gen`.
    pub(crate) pred_gen: u32,
    // Software TLB over the line most recently certified by a group
    // probe: member word accesses inside it skip the arena walk and
    // bounds check. Purely architectural — never consulted by the
    // cache model — so it is safe to leave stale (a miss just falls
    // back to the checked path).
    pub(crate) win: LineWindow,
    // The active probe certificate: true while the most recent group
    // probe proved its whole span mapped, 4-aligned, and inside
    // `win`. Member accesses then skip every check; any probe that
    // cannot prove it (line straddle, unmapped line, misaligned or
    // incongruent span) clears it and members take the checked walk.
    // Sound because group members never interleave across groups
    // (groups are maximal contiguous runs) and the base register is
    // pinned from probe to last member by the coalescing rules.
    pub(crate) win_ok: bool,
}

impl<'p> Machine<'p> {
    /// Prepares a machine at the program's entry point.
    #[must_use]
    pub fn new(program: &'p Program, config: &RunConfig) -> Self {
        let mut regs = [0u32; 32];
        regs[Reg::Sp as usize] = STACK_TOP;
        regs[Reg::Fp as usize] = STACK_TOP;
        regs[Reg::Gp as usize] = GP_VALUE;
        // Returning from the entry function jumps to the halt sentinel.
        let halt_index = program.insts.len();
        regs[Reg::Ra as usize] = layout::pc_of_index(halt_index);
        let has_prefetch = config
            .prefetch
            .as_ref()
            .is_some_and(|pf| pf.degree > 0 && !pf.sites.is_empty());
        let mut cache = MemorySystem::new(config.cache, &config.memory, config.seed, has_prefetch);
        let mut result = RunResult::with_len(program.insts.len());
        if config.classify_misses {
            cache.enable_profiling();
            result.load_miss_classes = Some(vec![[0u64; 3]; program.insts.len()]);
        }
        Machine {
            program,
            regs,
            pc: program.entry,
            halt_index,
            mem: Memory::new(&program.data),
            cache,
            rng: config.seed | 1,
            input: config.input.iter().copied().collect(),
            result,
            finished: None,
            engine: config.engine,
            prefetch_degree: {
                let mut v = vec![0u32; program.insts.len()];
                if let Some(pf) = &config.prefetch {
                    for &site in &pf.sites {
                        if let Some(slot) = v.get_mut(site) {
                            *slot = pf.degree;
                        }
                    }
                }
                v
            },
            trace: None,
            observatory: config
                .observe
                .map(|obs| MissObservatory::new(program.insts.len(), obs)),
            reuse: config
                .reuse_profile
                .then(|| ReuseMeasurement::new(program.insts.len(), config.cache.block_bytes())),
            tracing: false,
            has_prefetch,
            classifying: config.classify_misses,
            observing: config.observe.is_some(),
            reusing: config.reuse_profile,
            striding: config.memory.prefetch.is_some_and(|pf| pf.degree > 0),
            probe_fast: config.probe_fast,
            line_pred: if config.engine == Engine::Block && config.probe_fast {
                vec![u64::MAX; program.insts.len()].into_boxed_slice()
            } else {
                Box::new([])
            },
            pred_gen: 0,
            win: LineWindow::INVALID,
            win_ok: false,
        }
    }

    /// Advances the line-predictor generation, lapsing every
    /// outstanding `(line, generation)` certificate. Called on every
    /// slow-path demand access. On the (astronomically rare) 32-bit
    /// wrap the whole table is cleared so a stale entry can never
    /// alias a recycled generation value.
    #[inline]
    pub(crate) fn bump_pred_gen(&mut self) {
        self.pred_gen = self.pred_gen.wrapping_add(1);
        if self.pred_gen == 0 {
            self.line_pred.fill(u64::MAX);
        }
    }

    /// Enables memory-trace recording (see [`crate::trace`]).
    pub fn record_trace(&mut self) {
        self.trace = Some(Vec::new());
        self.tracing = true;
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r as usize]
    }

    /// Writes a register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::Zero {
            self.regs[r as usize] = v;
        }
    }

    /// The exit code if the program has terminated.
    #[must_use]
    pub fn exit_code(&self) -> Option<i32> {
        self.finished
    }

    fn next_rand(&mut self) -> u32 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as u32
    }

    /// Records a trace entry. Out of line: tracing is off in every
    /// hot configuration, so the common path only tests a bool.
    #[cold]
    fn push_trace(&mut self, at: usize, addr: u32, store: bool) {
        self.trace
            .as_mut()
            .expect("tracing flag implies trace buffer")
            .push(TraceRecord {
                at: at as u32,
                addr,
                store,
            });
    }

    /// Issues next-line prefetches for an instrumented load site.
    /// Out of line: only the prefetch-extension tables enable this.
    #[cold]
    fn issue_prefetches(&mut self, at: usize, addr: u32) {
        let degree = self.prefetch_degree[at];
        if degree == 0 {
            return;
        }
        let block = self.cache.l1().config().block_bytes();
        for d in 1..=degree {
            let Some(next) = addr.checked_add(block * d) else {
                break;
            };
            self.cache.prefetch_fill(next);
        }
    }

    /// Attributes the miss the cache just classified to load site
    /// `at`. Out of line: classification is opt-in profiling only.
    #[cold]
    fn attribute_miss_class(&mut self, at: usize) {
        let class = self
            .cache
            .last_miss_class()
            .expect("classifying implies a classified miss");
        self.result
            .load_miss_classes
            .as_mut()
            .expect("classifying implies attribution table")[at][class.index()] += 1;
    }

    /// Windows one load access into the observatory's current epoch.
    /// Out of line: the observatory is opt-in reporting only.
    #[cold]
    fn observe_load(&mut self, at: usize, miss: bool) {
        self.observatory
            .as_mut()
            .expect("observing flag implies observatory")
            .observe(at, miss);
    }

    /// Records that the load about to be observed hit only because a
    /// prefetch filed its line. Out of line, same as `observe_load`.
    #[cold]
    fn observe_hidden_load(&mut self, at: usize) {
        self.observatory
            .as_mut()
            .expect("observing flag implies observatory")
            .observe_hidden(at);
    }

    /// Pushes one data access onto the shadow LRU stack. Out of line:
    /// reuse measurement is opt-in validation only.
    #[cold]
    fn record_reuse(&mut self, at: usize, addr: u32, store: bool) {
        self.reuse
            .as_mut()
            .expect("reusing flag implies measurement")
            .record(at, addr, store);
    }

    // Inlined by fiat: this is the per-access entry of the cache
    // model, and whether the inliner keeps it inside the block
    // engine's dispatch loop has measured as a double-digit-percent
    // throughput swing between otherwise identical binaries.
    #[inline(always)]
    pub(crate) fn dcache_load(&mut self, at: usize, addr: u32) {
        if self.tracing {
            self.push_trace(at, addr, false);
        }
        self.result.dcache_accesses += 1;
        self.result.loads += 1;
        let access = self.cache.demand_access(addr);
        if access.hit {
            self.result.load_hits[at] += 1;
        } else {
            self.result.load_misses[at] += 1;
            self.result.load_misses_total += 1;
            self.result.dcache_misses += 1;
            if self.classifying {
                self.attribute_miss_class(at);
            }
        }
        if self.observing {
            if access.hidden {
                self.observe_hidden_load(at);
            }
            self.observe_load(at, !access.hit);
        }
        if self.reusing {
            self.record_reuse(at, addr, false);
        }
        if self.has_prefetch {
            self.issue_prefetches(at, addr);
        }
        if self.striding {
            self.cache.stride_observe(at, addr);
        }
    }

    // See `dcache_load` for why this is force-inlined.
    #[inline(always)]
    pub(crate) fn dcache_store(&mut self, at: usize, addr: u32) {
        if self.tracing {
            self.push_trace(at, addr, true);
        }
        self.result.dcache_accesses += 1;
        self.result.stores += 1;
        if !self.cache.demand_access(addr).hit {
            self.result.dcache_misses += 1;
        }
        if self.reusing {
            self.record_reuse(at, addr, true);
        }
    }

    /// Resolves an indirect jump target PC to an instruction index.
    /// The halt sentinel (one past the last instruction) is a valid
    /// target: returning there terminates the program.
    pub(crate) fn resolve_jump(&self, at: usize, target: u32) -> Result<usize, Trap> {
        match layout::index_of_pc(target) {
            Some(idx) if idx <= self.halt_index => Ok(idx),
            _ => Err(Trap::BadJump { at, target }),
        }
    }

    /// Executes the syscall selected by `$v0`. `EXIT` marks the
    /// machine finished; callers must check [`Self::exit_code`].
    pub(crate) fn syscall(&mut self, at: usize) -> Result<(), Trap> {
        let number = self.regs[Reg::V0 as usize];
        let a0 = self.regs[Reg::A0 as usize];
        match number {
            syscalls::PRINT_INT => self.result.output.push(a0 as i32),
            syscalls::READ_INT => {
                let v = self.input.pop_front().unwrap_or(0);
                self.set_reg(Reg::V0, v as u32);
            }
            syscalls::MALLOC => {
                let addr = self
                    .mem
                    .malloc(a0)
                    .map_err(|fault| Trap::Mem { at, fault })?;
                self.set_reg(Reg::V0, addr);
            }
            syscalls::EXIT => self.finished = Some(a0 as i32),
            syscalls::RAND => {
                let raw = self.next_rand();
                let bound = a0 as i32;
                let v = if bound > 0 {
                    raw % bound as u32
                } else {
                    raw & 0x7fff_ffff
                };
                self.set_reg(Reg::V0, v);
            }
            _ => return Err(Trap::BadSyscall { at, number }),
        }
        Ok(())
    }

    /// Executes a single instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on a runtime fault.
    ///
    /// # Panics
    ///
    /// Panics if called after the program has terminated.
    pub fn step(&mut self) -> Result<(), Trap> {
        assert!(self.finished.is_none(), "step() after termination");
        let at = self.pc;
        let inst = self.program.insts[at];
        self.result.exec_counts[at] += 1;
        self.result.instructions += 1;
        let mut next = at + 1;
        let r = |m: &Self, reg: Reg| m.regs[reg as usize];
        match inst {
            Inst::Lw { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_load(at, addr);
                let v = self
                    .mem
                    .read_u32(addr)
                    .map_err(|fault| Trap::Mem { at, fault })?;
                self.set_reg(rt, v);
            }
            Inst::Lb { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_load(at, addr);
                let v = self
                    .mem
                    .read_u8(addr)
                    .map_err(|fault| Trap::Mem { at, fault })?;
                self.set_reg(rt, v as i8 as i32 as u32);
            }
            Inst::Lbu { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_load(at, addr);
                let v = self
                    .mem
                    .read_u8(addr)
                    .map_err(|fault| Trap::Mem { at, fault })?;
                self.set_reg(rt, u32::from(v));
            }
            Inst::Lh { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_load(at, addr);
                let v = self
                    .mem
                    .read_u16(addr)
                    .map_err(|fault| Trap::Mem { at, fault })?;
                self.set_reg(rt, v as i16 as i32 as u32);
            }
            Inst::Lhu { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_load(at, addr);
                let v = self
                    .mem
                    .read_u16(addr)
                    .map_err(|fault| Trap::Mem { at, fault })?;
                self.set_reg(rt, u32::from(v));
            }
            Inst::Sw { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_store(at, addr);
                self.mem
                    .write_u32(addr, r(self, rt))
                    .map_err(|fault| Trap::Mem { at, fault })?;
            }
            Inst::Sb { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_store(at, addr);
                self.mem
                    .write_u8(addr, r(self, rt) as u8)
                    .map_err(|fault| Trap::Mem { at, fault })?;
            }
            Inst::Sh { rt, base, off } => {
                let addr = r(self, base).wrapping_add(off as i32 as u32);
                self.dcache_store(at, addr);
                self.mem
                    .write_u16(addr, r(self, rt) as u16)
                    .map_err(|fault| Trap::Mem { at, fault })?;
            }
            Inst::Lui { rt, imm } => self.set_reg(rt, u32::from(imm) << 16),
            Inst::Addu { rd, rs, rt } => {
                self.set_reg(rd, r(self, rs).wrapping_add(r(self, rt)));
            }
            Inst::Subu { rd, rs, rt } => {
                self.set_reg(rd, r(self, rs).wrapping_sub(r(self, rt)));
            }
            Inst::Mul { rd, rs, rt } => {
                self.set_reg(rd, r(self, rs).wrapping_mul(r(self, rt)));
            }
            Inst::Div { rd, rs, rt } => {
                let d = r(self, rt) as i32;
                if d == 0 {
                    return Err(Trap::DivByZero { at });
                }
                self.set_reg(rd, (r(self, rs) as i32).wrapping_div(d) as u32);
            }
            Inst::Rem { rd, rs, rt } => {
                let d = r(self, rt) as i32;
                if d == 0 {
                    return Err(Trap::DivByZero { at });
                }
                self.set_reg(rd, (r(self, rs) as i32).wrapping_rem(d) as u32);
            }
            Inst::And { rd, rs, rt } => self.set_reg(rd, r(self, rs) & r(self, rt)),
            Inst::Or { rd, rs, rt } => self.set_reg(rd, r(self, rs) | r(self, rt)),
            Inst::Xor { rd, rs, rt } => self.set_reg(rd, r(self, rs) ^ r(self, rt)),
            Inst::Nor { rd, rs, rt } => self.set_reg(rd, !(r(self, rs) | r(self, rt))),
            Inst::Slt { rd, rs, rt } => {
                self.set_reg(rd, u32::from((r(self, rs) as i32) < (r(self, rt) as i32)));
            }
            Inst::Sltu { rd, rs, rt } => {
                self.set_reg(rd, u32::from(r(self, rs) < r(self, rt)));
            }
            Inst::Addiu { rt, rs, imm } => {
                self.set_reg(rt, r(self, rs).wrapping_add(imm as i32 as u32));
            }
            Inst::Andi { rt, rs, imm } => self.set_reg(rt, r(self, rs) & u32::from(imm)),
            Inst::Ori { rt, rs, imm } => self.set_reg(rt, r(self, rs) | u32::from(imm)),
            Inst::Xori { rt, rs, imm } => self.set_reg(rt, r(self, rs) ^ u32::from(imm)),
            Inst::Slti { rt, rs, imm } => {
                self.set_reg(rt, u32::from((r(self, rs) as i32) < i32::from(imm)));
            }
            Inst::Sltiu { rt, rs, imm } => {
                self.set_reg(rt, u32::from(r(self, rs) < (imm as i32 as u32)));
            }
            Inst::Sll { rd, rt, shamt } => self.set_reg(rd, r(self, rt) << shamt),
            Inst::Srl { rd, rt, shamt } => self.set_reg(rd, r(self, rt) >> shamt),
            Inst::Sra { rd, rt, shamt } => {
                self.set_reg(rd, ((r(self, rt) as i32) >> shamt) as u32);
            }
            Inst::Sllv { rd, rt, rs } => {
                self.set_reg(rd, r(self, rt) << (r(self, rs) & 31));
            }
            Inst::Srlv { rd, rt, rs } => {
                self.set_reg(rd, r(self, rt) >> (r(self, rs) & 31));
            }
            Inst::Srav { rd, rt, rs } => {
                self.set_reg(rd, ((r(self, rt) as i32) >> (r(self, rs) & 31)) as u32);
            }
            Inst::Beq { rs, rt, target } => {
                if r(self, rs) == r(self, rt) {
                    next = target.index();
                }
            }
            Inst::Bne { rs, rt, target } => {
                if r(self, rs) != r(self, rt) {
                    next = target.index();
                }
            }
            Inst::Blez { rs, target } => {
                if (r(self, rs) as i32) <= 0 {
                    next = target.index();
                }
            }
            Inst::Bgtz { rs, target } => {
                if (r(self, rs) as i32) > 0 {
                    next = target.index();
                }
            }
            Inst::Bltz { rs, target } => {
                if (r(self, rs) as i32) < 0 {
                    next = target.index();
                }
            }
            Inst::Bgez { rs, target } => {
                if (r(self, rs) as i32) >= 0 {
                    next = target.index();
                }
            }
            Inst::J { target } => next = target.index(),
            Inst::Jal { target } => {
                self.set_reg(Reg::Ra, layout::pc_of_index(at + 1));
                next = target.index();
            }
            Inst::Jr { rs } => {
                next = self.resolve_jump(at, r(self, rs))?;
            }
            Inst::Jalr { rd, rs } => {
                let target = r(self, rs);
                self.set_reg(rd, layout::pc_of_index(at + 1));
                next = self.resolve_jump(at, target)?;
            }
            Inst::Syscall => {
                self.syscall(at)?;
                if self.finished.is_some() {
                    return Ok(());
                }
            }
            Inst::Nop => {}
        }
        if next == self.halt_index {
            // Fell off the entry function: $v0 is the exit code.
            self.finished = Some(self.reg(Reg::V0) as i32);
        } else {
            self.pc = next;
        }
        Ok(())
    }

    /// Runs to completion (or trap / step limit), consuming the machine.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that aborted execution.
    pub fn run_to_completion(self, max_steps: u64) -> Result<RunResult, Trap> {
        self.run_full(max_steps).map(|out| out.result)
    }

    /// Like [`Self::run_to_completion`], also returning the memory
    /// trace (empty unless [`Self::record_trace`] was called).
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that aborted execution.
    pub fn run_traced(self, max_steps: u64) -> Result<(RunResult, Vec<TraceRecord>), Trap> {
        self.run_full(max_steps).map(|out| (out.result, out.trace))
    }

    /// Runs to completion under the configured [`Engine`], consuming
    /// the machine and returning every output of the run.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that aborted execution.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the finished [`RunResult`] violates its
    /// cross-field invariants.
    pub fn run_full(mut self, max_steps: u64) -> Result<SimOutput, Trap> {
        let block_stats = match self.engine {
            Engine::Step => {
                self.run_steps(max_steps)?;
                None
            }
            Engine::Block => Some(self.run_block_engine(max_steps)?),
        };
        self.result.exit_code = self.finished.unwrap_or(0);
        self.result.cache_profile = self.cache.take_profile();
        self.cache.flush_into(&mut self.result);
        if cfg!(debug_assertions) {
            if let Err(violation) = self.result.check_consistency() {
                panic!("inconsistent RunResult: {violation}");
            }
        }
        let observatory = self.observatory.map(|mut obs| {
            obs.finish();
            obs
        });
        if cfg!(debug_assertions) {
            if let Some(obs) = &observatory {
                assert_eq!(
                    obs.site_totals(),
                    self.result.load_misses,
                    "observatory epoch totals diverge from per-site miss counts"
                );
            }
        }
        Ok(SimOutput {
            result: self.result,
            trace: self.trace.unwrap_or_default(),
            block_stats,
            observatory,
            reuse: self.reuse,
        })
    }

    /// Reference engine: the per-instruction `step()` loop.
    fn run_steps(&mut self, max_steps: u64) -> Result<(), Trap> {
        while self.finished.is_none() {
            if self.result.instructions >= max_steps {
                return Err(Trap::StepLimit { limit: max_steps });
            }
            self.step()?;
        }
        Ok(())
    }

    /// Block-cached engine: decoded basic-block dispatch. Tracing,
    /// prefetch, miss classification and the observatory need
    /// per-access hooks, so any of them selects the slow dispatch
    /// instantiation; the common configuration runs the fully batched
    /// fast path, shape-specialized to the memory configuration (see
    /// [`block::shape`]) with the probe-elimination layer on unless
    /// [`RunConfig::probe_fast`] turned it off.
    fn run_block_engine(&mut self, max_steps: u64) -> Result<BlockStats, Trap> {
        use block::shape;
        let slow = self.tracing
            || self.has_prefetch
            || self.classifying
            || self.observing
            || self.reusing
            || self.cache.forces_slow();
        let line_bytes = 1u32 << self.cache.hot_params();
        let coalesce = self.probe_fast && !slow;
        let mut cache = BlockCache::new(self.program.insts.len(), line_bytes, coalesce);
        if slow {
            block::run_blocks::<true, { shape::FULL }>(self, &mut cache, max_steps)?;
        } else if !self.probe_fast {
            // Escape hatch: the pre-probe-elimination fast path, with
            // the generic demand walk and no coalescing.
            block::run_blocks::<false, { shape::FULL }>(self, &mut cache, max_steps)?;
        } else if !self.cache.is_simple() {
            block::run_blocks::<false, { shape::L2 }>(self, &mut cache, max_steps)?;
        } else {
            match self.cache.policy() {
                Policy::Lru => {
                    block::run_blocks::<false, { shape::PLAIN_LRU }>(self, &mut cache, max_steps)?;
                }
                Policy::Plru => {
                    block::run_blocks::<false, { shape::PLAIN_PLRU }>(self, &mut cache, max_steps)?;
                }
                Policy::Random => {
                    block::run_blocks::<false, { shape::PLAIN_RANDOM }>(
                        self, &mut cache, max_steps,
                    )?;
                }
            }
        }
        cache.flush_exec_counts(&mut self.result);
        if !slow {
            cache.flush_access_totals(&mut self.result);
            // The fast path skips per-access hit bookkeeping; every
            // execution of a load site is exactly one access, so its
            // hits are its executions minus its recorded misses.
            for (i, inst) in self.program.insts.iter().enumerate() {
                if inst.is_load() {
                    self.result.load_hits[i] =
                        self.result.exec_counts[i] - self.result.load_misses[i];
                }
            }
        }
        Ok(cache.stats())
    }
}

/// Simulates `program` under `config`, returning the full measurement
/// record.
///
/// # Errors
///
/// Returns a [`Trap`] if the program faults or exceeds
/// `config.max_steps`.
pub fn run(program: &Program, config: &RunConfig) -> Result<RunResult, Trap> {
    Machine::new(program, config).run_to_completion(config.max_steps)
}

/// Like [`run`], also returning the block-cache stats (`None` under
/// [`Engine::Step`]).
///
/// # Errors
///
/// Returns a [`Trap`] if the program faults or exceeds
/// `config.max_steps`.
pub fn run_with_stats(
    program: &Program,
    config: &RunConfig,
) -> Result<(RunResult, Option<BlockStats>), Trap> {
    Machine::new(program, config)
        .run_full(config.max_steps)
        .map(|out| (out.result, out.block_stats))
}

/// Like [`run`], returning every output of the run — including the
/// miss observatory when [`RunConfig::observe`] is set.
///
/// # Errors
///
/// Returns a [`Trap`] if the program faults or exceeds
/// `config.max_steps`.
pub fn run_full(program: &Program, config: &RunConfig) -> Result<SimOutput, Trap> {
    Machine::new(program, config).run_full(config.max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn exec(src: &str) -> RunResult {
        run(&parse_asm(src).unwrap(), &RunConfig::default()).unwrap()
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 into $t1, print it.
        let r = exec(
            "main:\n\
             \tli $t0, 10\n\
             \tli $t1, 0\n\
             .Lloop:\n\
             \taddu $t1, $t1, $t0\n\
             \taddiu $t0, $t0, -1\n\
             \tbgtz $t0, .Lloop\n\
             \tmove $a0, $t1\n\
             \tli $v0, 1\n\
             \tsyscall\n\
             \tli $v0, 10\n\
             \tli $a0, 0\n\
             \tsyscall\n",
        );
        assert_eq!(r.output, vec![55]);
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn memory_and_cache_stats() {
        // Store then load the same word twice: 1 store access, 2 load
        // accesses, and only the store misses (write-allocate).
        let r = exec(
            "main:\n\
             \tli $t0, 7\n\
             \tsw $t0, 0($gp)\n\
             \tlw $t1, 0($gp)\n\
             \tlw $t2, 0($gp)\n\
             \tli $v0, 10\n\
             \tli $a0, 0\n\
             \tsyscall\n",
        );
        assert_eq!(r.loads, 2);
        assert_eq!(r.stores, 1);
        assert_eq!(r.dcache_misses, 1);
        assert_eq!(r.load_misses_total, 0);
        assert_eq!(r.load_hits[2], 1);
        assert_eq!(r.load_hits[3], 1);
    }

    #[test]
    fn per_pc_miss_attribution() {
        // Strided scan over 4 KiB: every 8th word access misses
        // (32-byte blocks), attributed to the single load site.
        let r = exec(
            "main:\n\
             \tli  $t0, 0\n\
             \tli  $t3, 1024\n\
             .Lloop:\n\
             \tsll $t1, $t0, 2\n\
             \taddu $t1, $t1, $gp\n\
             \tlw  $t2, 0($t1)\n\
             \taddiu $t0, $t0, 1\n\
             \tbne $t0, $t3, .Lloop\n\
             \tli $v0, 10\n\
             \tsyscall\n",
        );
        let load_idx = 4;
        assert_eq!(r.load_misses[load_idx], 1024 / 8);
        assert_eq!(r.load_hits[load_idx], 1024 - 1024 / 8);
        assert_eq!(r.exec_counts[load_idx], 1024);
    }

    #[test]
    fn miss_classification_end_to_end() {
        // The strided-scan kernel under classification: counts must be
        // unchanged, every site miss classified, and a pure forward
        // scan has no conflict misses.
        let src = "main:\n\
                   \tli  $t0, 0\n\
                   \tli  $t3, 1024\n\
                   .Lloop:\n\
                   \tsll $t1, $t0, 2\n\
                   \taddu $t1, $t1, $gp\n\
                   \tlw  $t2, 0($t1)\n\
                   \taddiu $t0, $t0, 1\n\
                   \tbne $t0, $t3, .Lloop\n\
                   \tli $v0, 10\n\
                   \tsyscall\n";
        let p = parse_asm(src).unwrap();
        let plain = run(&p, &RunConfig::default()).unwrap();
        let cfg = RunConfig {
            classify_misses: true,
            ..RunConfig::default()
        };
        let classified = run(&p, &cfg).unwrap();
        assert_eq!(plain.load_misses, classified.load_misses);
        assert_eq!(plain.instructions, classified.instructions);
        assert_eq!(plain.output, classified.output);
        assert!(plain.cache_profile.is_none());
        let profile = classified.cache_profile.as_ref().expect("profile present");
        assert_eq!(profile.classes.total(), classified.dcache_misses);
        // 4 KiB forward scan fits the 32 KiB cache: all compulsory.
        assert_eq!(profile.classes.compulsory, classified.dcache_misses);
        let site_classes = classified.load_miss_classes.as_ref().unwrap();
        let load_idx = 4;
        assert_eq!(
            site_classes[load_idx].iter().sum::<u64>(),
            classified.load_misses[load_idx]
        );
        classified.check_consistency().expect("consistent");
    }

    #[test]
    fn observatory_windows_misses_identically_on_both_engines() {
        // Strided scan over 4 KiB (1024 loads): every 8th access
        // misses. With 256-access epochs the run splits into exactly
        // 4 full epochs of 32 misses each at the single load site.
        let src = "main:\n\
                   \tli  $t0, 0\n\
                   \tli  $t3, 1024\n\
                   .Lloop:\n\
                   \tsll $t1, $t0, 2\n\
                   \taddu $t1, $t1, $gp\n\
                   \tlw  $t2, 0($t1)\n\
                   \taddiu $t0, $t0, 1\n\
                   \tbne $t0, $t3, .Lloop\n\
                   \tli $v0, 10\n\
                   \tsyscall\n";
        let p = parse_asm(src).unwrap();
        let load_idx = 4;
        let mut outputs = Vec::new();
        for engine in [Engine::Step, Engine::Block] {
            let cfg = RunConfig {
                observe: Some(crate::observe::ObserveConfig { epoch_len: 256 }),
                engine,
                ..RunConfig::default()
            };
            let out = super::run_full(&p, &cfg).unwrap();
            let obs = out.observatory.as_ref().expect("observatory collected");
            assert_eq!(obs.epochs().len(), 4);
            for epoch in obs.epochs() {
                assert_eq!(epoch.loads, 256);
                assert_eq!(epoch.misses, vec![(load_idx as u32, 32)]);
            }
            assert_eq!(obs.site_totals(), out.result.load_misses);
            // Observation must not perturb the measurement record.
            let plain = run(
                &p,
                &RunConfig {
                    engine,
                    ..RunConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.result, plain);
            outputs.push(obs.epochs().to_vec());
        }
        assert_eq!(outputs[0], outputs[1], "epochs diverge across engines");
    }

    #[test]
    fn reuse_measurement_is_engine_invariant_and_non_perturbing() {
        // Strided scan over 4 KiB: 7/8 of accesses reuse their block
        // at distance 0, 1/8 first-touch 128 distinct blocks.
        let src = "main:\n\
                   \tli  $t0, 0\n\
                   \tli  $t3, 1024\n\
                   .Lloop:\n\
                   \tsll $t1, $t0, 2\n\
                   \taddu $t1, $t1, $gp\n\
                   \tlw  $t2, 0($t1)\n\
                   \taddiu $t0, $t0, 1\n\
                   \tbne $t0, $t3, .Lloop\n\
                   \tli $v0, 10\n\
                   \tsyscall\n";
        let p = parse_asm(src).unwrap();
        let load_idx = 4;
        let mut per_engine = Vec::new();
        for engine in [Engine::Step, Engine::Block] {
            let cfg = RunConfig {
                reuse_profile: true,
                engine,
                ..RunConfig::default()
            };
            let out = super::run_full(&p, &cfg).unwrap();
            let site = out
                .reuse
                .as_ref()
                .expect("measurement collected")
                .site(load_idx);
            assert_eq!(site.cold, 128);
            assert_eq!(site.buckets[0], 896);
            assert_eq!(site.total(), 1024);
            // Measurement must not perturb the run itself.
            let plain = run(
                &p,
                &RunConfig {
                    engine,
                    ..RunConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.result, plain);
            per_engine.push(site.clone());
        }
        assert_eq!(per_engine[0].buckets, per_engine[1].buckets);
        assert_eq!(per_engine[0].cold, per_engine[1].cold);
    }

    #[test]
    fn call_and_return() {
        let r = exec(
            "main:\n\
             \tjal helper\n\
             \tmove $a0, $v0\n\
             \tli $v0, 1\n\
             \tsyscall\n\
             \tli $v0, 10\n\
             \tli $a0, 0\n\
             \tsyscall\n\
             helper:\n\
             \tli $v0, 99\n\
             \tjr $ra\n",
        );
        assert_eq!(r.output, vec![99]);
    }

    #[test]
    fn fallthrough_return_exits_with_v0() {
        let r = exec("main:\n\tli $v0, 3\n\tjr $ra\n");
        assert_eq!(r.exit_code, 3);
    }

    #[test]
    fn malloc_and_heap_access() {
        let r = exec(
            "main:\n\
             \tli $a0, 64\n\
             \tli $v0, 9\n\
             \tsyscall\n\
             \tli $t0, 5\n\
             \tsw $t0, 32($v0)\n\
             \tlw $a0, 32($v0)\n\
             \tli $v0, 1\n\
             \tsyscall\n\
             \tli $v0, 10\n\
             \tli $a0, 0\n\
             \tsyscall\n",
        );
        assert_eq!(r.output, vec![5]);
    }

    #[test]
    fn read_int_consumes_input() {
        let p = parse_asm(
            "main:\n\
             \tli $v0, 5\n\
             \tsyscall\n\
             \tmove $a0, $v0\n\
             \tli $v0, 1\n\
             \tsyscall\n\
             \tli $v0, 5\n\
             \tsyscall\n\
             \tmove $a0, $v0\n\
             \tli $v0, 1\n\
             \tsyscall\n\
             \tli $v0, 10\n\
             \tsyscall\n",
        )
        .unwrap();
        let cfg = RunConfig {
            input: vec![11, -4],
            ..RunConfig::default()
        };
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.output, vec![11, -4]);
    }

    #[test]
    fn rand_is_deterministic_and_bounded() {
        let src = "main:\n\
                   \tli $a0, 10\n\
                   \tli $v0, 42\n\
                   \tsyscall\n\
                   \tmove $a0, $v0\n\
                   \tli $v0, 1\n\
                   \tsyscall\n\
                   \tli $v0, 10\n\
                   \tsyscall\n";
        let r1 = exec(src);
        let r2 = exec(src);
        assert_eq!(r1.output, r2.output);
        assert!((0..10).contains(&r1.output[0]));
    }

    #[test]
    fn div_by_zero_traps() {
        let p = parse_asm("main:\n\tli $t0, 1\n\tdiv $t1, $t0, $zero\n").unwrap();
        assert_eq!(
            run(&p, &RunConfig::default()),
            Err(Trap::DivByZero { at: 1 })
        );
    }

    #[test]
    fn null_load_traps() {
        let p = parse_asm("main:\n\tlw $t0, 0($zero)\n").unwrap();
        assert!(matches!(
            run(&p, &RunConfig::default()),
            Err(Trap::Mem { at: 0, .. })
        ));
    }

    #[test]
    fn step_limit_traps() {
        let p = parse_asm("main:\n.Lspin:\n\tj .Lspin\n").unwrap();
        let cfg = RunConfig {
            max_steps: 1000,
            ..RunConfig::default()
        };
        assert_eq!(run(&p, &cfg), Err(Trap::StepLimit { limit: 1000 }));
    }

    #[test]
    fn bad_jump_traps() {
        let p = parse_asm("main:\n\tli $t0, 3\n\tjr $t0\n").unwrap();
        assert!(matches!(
            run(&p, &RunConfig::default()),
            Err(Trap::BadJump { at: 1, .. })
        ));
    }

    #[test]
    fn signed_ops() {
        let r = exec(
            "main:\n\
             \tli $t0, -12\n\
             \tli $t1, 5\n\
             \tdiv $t2, $t0, $t1\n\
             \trem $t3, $t0, $t1\n\
             \tsra $t4, $t0, 1\n\
             \tslt $t5, $t0, $t1\n\
             \tmove $a0, $t2\n\tli $v0, 1\n\tsyscall\n\
             \tmove $a0, $t3\n\tli $v0, 1\n\tsyscall\n\
             \tmove $a0, $t4\n\tli $v0, 1\n\tsyscall\n\
             \tmove $a0, $t5\n\tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        assert_eq!(r.output, vec![-2, -2, -6, 1]);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    /// A forward streaming scan: next-line prefetch at the load site
    /// should roughly halve its misses.
    fn streaming_program() -> Program {
        parse_asm(
            "main:\n\
             \tli  $t0, 0\n\
             \tli  $t3, 4096\n\
             .Lloop:\n\
             \tsll $t1, $t0, 2\n\
             \taddu $t1, $t1, $gp\n\
             \tlw  $t2, 0($t1)\n\
             \taddiu $t0, $t0, 1\n\
             \tbne $t0, $t3, .Lloop\n\
             \tli $v0, 10\n\
             \tsyscall\n",
        )
        .unwrap()
    }

    #[test]
    fn next_line_prefetch_cuts_streaming_misses() {
        let p = streaming_program();
        let load_site = 4;
        let base = run(&p, &RunConfig::default()).unwrap();
        let cfg = RunConfig {
            prefetch: Some(PrefetchConfig::next_line(vec![load_site])),
            ..RunConfig::default()
        };
        let pf = run(&p, &cfg).unwrap();
        assert!(base.load_misses[load_site] > 100);
        assert!(
            pf.load_misses[load_site] * 2 <= base.load_misses[load_site],
            "prefetch did not help: {} vs {}",
            pf.load_misses[load_site],
            base.load_misses[load_site]
        );
        assert_eq!(pf.prefetches_issued, pf.exec_counts[load_site]);
        // Functional behaviour is unchanged.
        assert_eq!(pf.output, base.output);
        assert_eq!(pf.exit_code, base.exit_code);
    }

    #[test]
    fn uninstrumented_sites_issue_nothing() {
        let p = streaming_program();
        let cfg = RunConfig {
            prefetch: Some(PrefetchConfig::next_line(vec![0])), // a non-load
            ..RunConfig::default()
        };
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.prefetches_issued, 0);
    }

    #[test]
    fn higher_degree_prefetches_more() {
        let p = streaming_program();
        let cfg = RunConfig {
            prefetch: Some(PrefetchConfig {
                sites: vec![4],
                degree: 4,
            }),
            ..RunConfig::default()
        };
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.prefetches_issued, 4 * r.exec_counts[4]);
    }

    #[test]
    fn out_of_range_site_is_ignored() {
        let p = streaming_program();
        let cfg = RunConfig {
            prefetch: Some(PrefetchConfig::next_line(vec![10_000])),
            ..RunConfig::default()
        };
        let r = run(&p, &cfg).unwrap();
        assert_eq!(r.prefetches_issued, 0);
    }
}

#[cfg(test)]
mod isa_coverage_tests {
    use super::*;
    use dl_mips::parse::parse_asm;

    fn exec(src: &str) -> RunResult {
        run(&parse_asm(src).unwrap(), &RunConfig::default()).unwrap()
    }

    #[test]
    fn halfword_loads_and_stores() {
        let r = exec(
            "main:\n\
             \tli $t0, -2\n\
             \tsh $t0, 0($gp)\n\
             \tlh $a0, 0($gp)\n\
             \tli $v0, 1\n\tsyscall\n\
             \tlhu $a0, 0($gp)\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        assert_eq!(r.output, vec![-2, 0xfffe]);
    }

    #[test]
    fn byte_sign_and_zero_extension() {
        let r = exec(
            "main:\n\
             \tli $t0, 200\n\
             \tsb $t0, 0($gp)\n\
             \tlb $a0, 0($gp)\n\
             \tli $v0, 1\n\tsyscall\n\
             \tlbu $a0, 0($gp)\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        assert_eq!(r.output, vec![-56, 200]);
    }

    #[test]
    fn sign_branches() {
        let r = exec(
            "main:\n\
             \tli $t0, -5\n\
             \tli $a0, 0\n\
             \tbltz $t0, .La\n\
             \tli $a0, 99\n\
             .La:\n\
             \tbgez $t0, .Lb\n\
             \taddiu $a0, $a0, 1\n\
             .Lb:\n\
             \tli $t1, 0\n\
             \tbgez $t1, .Lc\n\
             \taddiu $a0, $a0, 100\n\
             .Lc:\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        // bltz taken (a0 stays 0), bgez -5 not taken (+1), bgez 0 taken.
        assert_eq!(r.output, vec![1]);
    }

    #[test]
    fn variable_shifts_mask_to_five_bits() {
        let r = exec(
            "main:\n\
             \tli $t0, 1\n\
             \tli $t1, 33\n\
             \tsllv $a0, $t0, $t1\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $t2, -64\n\
             \tli $t3, 3\n\
             \tsrav $a0, $t2, $t3\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $t4, 0x80\n\
             \tsrlv $a0, $t4, $t3\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        // 33 & 31 = 1 -> 2; -64 >> 3 arithmetic = -8; 0x80 >> 3 = 16.
        assert_eq!(r.output, vec![2, -8, 16]);
    }

    #[test]
    fn jalr_indirect_call() {
        let src = "main:\n\
                   \tlui $t0, 0x0040\n\
                   \tori $t0, $t0, 0x0018\n\
                   \tjalr $ra, $t0\n\
                   \tmove $a0, $v0\n\
                   \tli $v0, 1\n\tsyscall\n\
                   \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n\
                   helper:\n\
                   \tli $v0, 77\n\
                   \tjr $ra\n";
        // main has 9 instructions (0-8: lui, ori, jalr, move, li,
        // syscall, li, li, syscall), so helper starts at index 9:
        // pc = 0x0040_0000 + 4*9 = 0x0040_0024.
        let src = src.replace("0x0018", "0x0024");
        let r = exec(&src);
        assert_eq!(r.output, vec![77]);
    }

    #[test]
    fn bitwise_register_forms() {
        let r = exec(
            "main:\n\
             \tli $t0, 0x0f0f\n\
             \tli $t1, 0x00ff\n\
             \txor $a0, $t0, $t1\n\
             \tli $v0, 1\n\tsyscall\n\
             \tnor $a0, $t0, $t1\n\
             \tli $v0, 1\n\tsyscall\n\
             \tandi $a0, $t0, 0xff\n\
             \tli $v0, 1\n\tsyscall\n\
             \txori $a0, $t0, 0xffff\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        assert_eq!(r.output, vec![0x0ff0, !(0x0f0f | 0x00ff), 0x0f, 0xf0f0]);
    }

    #[test]
    fn slti_and_sltiu_semantics() {
        let r = exec(
            "main:\n\
             \tli $t0, -1\n\
             \tslti $a0, $t0, 0\n\
             \tli $v0, 1\n\tsyscall\n\
             \tsltiu $a0, $t0, 0\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        // Signed: -1 < 0. Unsigned: 0xffffffff is not < 0.
        assert_eq!(r.output, vec![1, 0]);
    }

    #[test]
    fn bad_syscall_traps() {
        let p = parse_asm("main:\n\tli $v0, 99\n\tsyscall\n").unwrap();
        assert_eq!(
            run(&p, &RunConfig::default()),
            Err(Trap::BadSyscall { at: 1, number: 99 })
        );
    }

    #[test]
    fn blez_boundary() {
        let r = exec(
            "main:\n\
             \tli $a0, 0\n\
             \tli $t0, 0\n\
             \tblez $t0, .La\n\
             \tli $a0, 5\n\
             .La:\n\
             \tli $t1, 1\n\
             \tblez $t1, .Lb\n\
             \taddiu $a0, $a0, 10\n\
             .Lb:\n\
             \tli $v0, 1\n\tsyscall\n\
             \tli $v0, 10\n\tli $a0, 0\n\tsyscall\n",
        );
        assert_eq!(r.output, vec![10]);
    }
}
