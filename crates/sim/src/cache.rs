//! A set-associative, write-allocate data-cache model.
//!
//! Matches the paper's simulated cache: the training configuration is a
//! 4-way, 256-set, 32-byte-block data cache (32 KiB); the evaluation
//! sweeps associativity (2/4/8) and capacity (8–64 KiB). Replacement
//! defaults to true LRU; [`Cache::with_policy`] selects tree-PLRU or
//! random instead (see [`crate::memory`]), and the block-level
//! operations ([`Cache::invalidate_block`] and friends) exist for the
//! two-level hierarchy's inclusion maintenance.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use crate::memory::{Policy, RandomEvict, ReplacementPolicy, TreePlru};

/// Geometry of a cache: total capacity, associativity, and block size.
///
/// # Example
///
/// ```
/// use dl_sim::CacheConfig;
/// let c = CacheConfig::paper_training();
/// assert_eq!(c.sets(), 256);
/// assert_eq!(c.size_bytes(), 32 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size: u32,
    assoc: u32,
    block: u32,
}

/// Error constructing an invalid [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfigError(String);

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.0)
    }
}

impl std::error::Error for CacheConfigError {}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Errors
    ///
    /// Returns an error unless `size`, `assoc`, and `block` are powers
    /// of two with `size >= assoc * block`.
    pub fn new(size: u32, assoc: u32, block: u32) -> Result<Self, CacheConfigError> {
        for (name, v) in [("size", size), ("assoc", assoc), ("block", block)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(CacheConfigError(format!(
                    "{name} = {v} must be a nonzero power of two"
                )));
            }
        }
        if size < assoc * block {
            return Err(CacheConfigError(format!(
                "size {size} smaller than one set (assoc {assoc} x block {block})"
            )));
        }
        Ok(CacheConfig { size, assoc, block })
    }

    /// The paper's training-phase cache: 4-way, 256 sets, 32-byte
    /// blocks (32 KiB).
    #[must_use]
    pub fn paper_training() -> Self {
        CacheConfig::new(32 * 1024, 4, 32).expect("static config is valid")
    }

    /// The paper's baseline evaluation cache (Table 11): 8 KiB, 4-way,
    /// 32-byte blocks.
    #[must_use]
    pub fn paper_baseline() -> Self {
        CacheConfig::new(8 * 1024, 4, 32).expect("static config is valid")
    }

    /// A `size_kb`-KiB cache with the given associativity and 32-byte
    /// blocks, as used in the paper's sweeps.
    ///
    /// # Panics
    ///
    /// Panics if the resulting geometry is invalid.
    #[must_use]
    pub fn kb(size_kb: u32, assoc: u32) -> Self {
        CacheConfig::new(size_kb * 1024, assoc, 32).expect("invalid sweep geometry")
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u32 {
        self.size
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Block (line) size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u32 {
        self.block
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.size / (self.assoc * self.block)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_training()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way {}B-block",
            self.size / 1024,
            self.assoc,
            self.block
        )
    }
}

const INVALID_TAG: u64 = u64::MAX;

/// Reconstructs the block number a displaced tag held, or `None` for
/// an invalid (empty) way. Block and (set, tag) determine each other.
fn evicted_block(old_tag: u64, set: u32, tag_shift: u32) -> Option<u64> {
    (old_tag != INVALID_TAG).then(|| (old_tag << tag_shift) | u64::from(set))
}

/// The classical "three Cs" classification of one cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissClass {
    /// First-ever reference to the block (cold miss).
    #[default]
    Compulsory,
    /// Would miss even in a fully-associative cache of the same
    /// capacity (working set too large).
    Capacity,
    /// Hits in the fully-associative shadow cache but misses here —
    /// caused purely by set-index conflicts.
    Conflict,
}

impl MissClass {
    /// Stable index (0 = compulsory, 1 = capacity, 2 = conflict) used
    /// by per-site attribution arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Miss counts by class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MissClasses {
    /// Cold (first-reference) misses.
    pub compulsory: u64,
    /// Working-set (fully-associative) misses.
    pub capacity: u64,
    /// Set-conflict misses.
    pub conflict: u64,
}

impl MissClasses {
    /// Total classified misses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }

    /// Adds one miss of `class`.
    pub fn add(&mut self, class: MissClass) {
        match class {
            MissClass::Compulsory => self.compulsory += 1,
            MissClass::Capacity => self.capacity += 1,
            MissClass::Conflict => self.conflict += 1,
        }
    }
}

/// Opt-in cache profiling output: miss-class breakdown plus per-set
/// access/miss histograms (the raw material for conflict analysis).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheProfile {
    /// Misses by compulsory/capacity/conflict class. Counts *every*
    /// fill the cache performed, including prefetch fills.
    pub classes: MissClasses,
    /// Accesses per set (length = number of sets).
    pub set_accesses: Vec<u64>,
    /// Misses per set (length = number of sets).
    pub set_misses: Vec<u64>,
}

/// Shadow state backing miss classification: a set of every block ever
/// touched (compulsory detection) and a fully-associative LRU cache of
/// the same capacity (capacity vs. conflict detection).
#[derive(Debug, Clone)]
struct ProfileState {
    touched: HashSet<u64>,
    // block -> recency stamp, and the inverse ordered by stamp; the
    // smallest stamp is the fully-associative LRU victim.
    shadow: HashMap<u64, u64>,
    stamps: BTreeMap<u64, u64>,
    clock: u64,
    cap_blocks: usize,
    profile: CacheProfile,
    last_class: MissClass,
}

impl ProfileState {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        ProfileState {
            touched: HashSet::new(),
            shadow: HashMap::new(),
            stamps: BTreeMap::new(),
            clock: 0,
            cap_blocks: (cfg.size_bytes() / cfg.block_bytes()) as usize,
            profile: CacheProfile {
                classes: MissClasses::default(),
                set_accesses: vec![0; sets],
                set_misses: vec![0; sets],
            },
            last_class: MissClass::default(),
        }
    }
}

/// Replacement machinery: the default LRU keeps its fused
/// search/recency representation (the `order` permutation inside
/// [`Cache`], searched MRU-first and rotated in place); the
/// alternative policies carry their own per-set state behind
/// [`ReplacementPolicy`] and are dispatched statically per access.
#[derive(Debug, Clone)]
enum Repl {
    /// True LRU via the `order` permutation (not this enum's state).
    Lru,
    /// Tree-PLRU recency bits.
    Plru(TreePlru),
    /// Random victims from a seeded PRNG.
    Random(RandomEvict),
}

impl Repl {
    fn touch(&mut self, set: usize, assoc: usize, way: usize) {
        match self {
            // The LRU arm fuses its touch into the set walk.
            Repl::Lru => unreachable!("LRU recency lives in Cache::order"),
            Repl::Plru(p) => p.touch(set, assoc, way),
            Repl::Random(r) => r.touch(set, assoc, way),
        }
    }

    fn victim(&mut self, set: usize, assoc: usize) -> usize {
        match self {
            Repl::Lru => unreachable!("LRU victims live in Cache::order"),
            Repl::Plru(p) => p.victim(set, assoc),
            Repl::Random(r) => r.victim(set, assoc),
        }
    }

    fn reset(&mut self, sets: usize, assoc: u32) {
        match self {
            Repl::Lru => {}
            Repl::Plru(p) => *p = TreePlru::new(sets, assoc),
            Repl::Random(r) => r.reset(),
        }
    }
}

/// A simulated data cache with write-allocate stores and pluggable
/// replacement (true LRU by default).
///
/// LRU replacement state is a per-set MRU-first permutation of way
/// indices (`order`), not timestamps: a hit rotates the touched way
/// to the front, a miss evicts the way at the tail. Repeated accesses
/// to the hottest block of a set — by far the common case in loop
/// code — take a one-compare fast path that neither walks the set nor
/// rewrites the recency state; that fast path stays valid under every
/// policy because re-touching the most recently touched way is always
/// a no-op (see [`crate::memory`]).
///
/// # Example
///
/// ```
/// use dl_sim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::kb(8, 2));
/// assert!(!c.access(0x1000_0000)); // cold miss
/// assert!(c.access(0x1000_0004));  // same 32-byte block
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // tags[set * assoc + way]; INVALID_TAG means empty.
    tags: Vec<u64>,
    // order[set * assoc + i] is the way index of the i-th most
    // recently used way of `set` (i = 0 ⇒ MRU, i = assoc-1 ⇒ LRU).
    order: Vec<u16>,
    // mru[set] holds the *block number* resident in the set's MRU way
    // (mirroring tags[set * assoc + order[set * assoc]]; block and
    // (set, tag) determine each other), so the hot-path hit check is
    // one shift, one mask and one compare — no tag extraction.
    mru: Vec<u64>,
    set_shift: u32,
    set_mask: u32,
    tag_shift: u32,
    hits: u64,
    misses: u64,
    repl: Repl,
    // Opt-in profiling (miss classes, per-set histograms). `profiling`
    // mirrors `profile.is_some()` so the hot path tests one bool.
    profiling: bool,
    profile: Option<Box<ProfileState>>,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let assoc = cfg.assoc() as usize;
        let ways = cfg.sets() as usize * assoc;
        let mut order = vec![0u16; ways];
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = (i % assoc) as u16;
        }
        Cache {
            cfg,
            tags: vec![INVALID_TAG; ways],
            order,
            mru: vec![INVALID_TAG; cfg.sets() as usize],
            set_shift: cfg.block_bytes().trailing_zeros(),
            set_mask: cfg.sets() - 1,
            tag_shift: (cfg.sets() - 1).count_ones(),
            hits: 0,
            misses: 0,
            repl: Repl::Lru,
            profiling: false,
            profile: None,
        }
    }

    /// Creates an empty cache running `policy` instead of the default
    /// LRU. `seed` feeds the random policy's PRNG (other policies
    /// ignore it), keeping victim streams deterministic per run.
    #[must_use]
    pub fn with_policy(cfg: CacheConfig, policy: Policy, seed: u64) -> Self {
        let mut cache = Cache::new(cfg);
        cache.repl = match policy {
            Policy::Lru => Repl::Lru,
            Policy::Plru => Repl::Plru(TreePlru::new(cfg.sets() as usize, cfg.assoc())),
            Policy::Random => Repl::Random(RandomEvict::new(seed)),
        };
        cache
    }

    /// The replacement policy this cache runs.
    #[must_use]
    pub fn policy(&self) -> Policy {
        match self.repl {
            Repl::Lru => Policy::Lru,
            Repl::Plru(_) => Policy::Plru,
            Repl::Random(_) => Policy::Random,
        }
    }

    /// Enables miss classification and per-set histograms. Profiling
    /// tracks a shadow fully-associative cache, so enable it only when
    /// the breakdown is wanted — never on the memoized table-generation
    /// hot path's default configuration.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Box::new(ProfileState::new(self.cfg)));
        self.profiling = true;
    }

    /// The class of the most recent profiled miss, or `None` if
    /// profiling is off or no miss has occurred yet.
    #[must_use]
    pub fn last_miss_class(&self) -> Option<MissClass> {
        self.profile
            .as_ref()
            .filter(|p| p.profile.classes.total() > 0)
            .map(|p| p.last_class)
    }

    /// Returns the accumulated profile, leaving profiling enabled, or
    /// `None` if profiling was never enabled.
    #[must_use]
    pub fn profile(&self) -> Option<&CacheProfile> {
        self.profile.as_ref().map(|p| &p.profile)
    }

    /// Takes the accumulated profile out of the cache, disabling
    /// further profiling.
    #[must_use]
    pub fn take_profile(&mut self) -> Option<CacheProfile> {
        self.profiling = false;
        self.profile.take().map(|p| p.profile)
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// The block-offset shift (log2 of the block size) for callers
    /// that hoist it out of an access loop (the block engine's fast
    /// path computes block numbers from registers instead of
    /// reloading this field per access).
    #[inline]
    pub(crate) fn hot_params(&self) -> u32 {
        self.set_shift
    }

    /// The per-set MRU block-number table (length = number of sets, a
    /// power of two; a block's set is `block & (sets - 1)`). An access
    /// whose block number matches its set's entry is a hit that
    /// changes no replacement state, so the block engine's fast path
    /// answers it with one compare and skips [`Cache::access`]
    /// entirely — leaving the aggregate `hits` counter behind. That is
    /// sound because cache totals are not observable through a run
    /// ([`crate::RunResult`] carries its own counters); direct users
    /// of the public API always go through [`Cache::access`], which
    /// counts every access.
    #[inline(always)]
    pub(crate) fn mru_blocks(&self) -> &[u64] {
        &self.mru
    }

    /// Simulates one access to `addr`, returning `true` on hit.
    /// On a miss the block is filled (evicting the policy's victim).
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        self.access_with_victim(addr).0
    }

    /// Like [`Cache::access`], additionally reporting the block number
    /// the fill evicted (if the access missed and displaced a valid
    /// line) — the information the two-level hierarchy needs for
    /// inclusion maintenance. Victim reconstruction runs only on the
    /// miss path, so [`Cache::access`] pays nothing for it.
    #[inline]
    pub(crate) fn access_with_victim(&mut self, addr: u32) -> (bool, Option<u64>) {
        let block = u64::from(addr >> self.set_shift);
        let set = (block as u32) & self.set_mask;
        let tag = block >> self.tag_shift;
        // Fast path: the MRU way already holds the block, so recency
        // state is already correct — one compare, no set walk.
        if self.mru[set as usize] == block {
            self.hits += 1;
            if self.profiling {
                self.profile_access(block, set, true);
            }
            return (true, None);
        }
        let assoc = self.cfg.assoc as usize;
        let (hit, evicted) = self.access_slow(set as usize * assoc, assoc, set, tag);
        self.mru[set as usize] = block;
        if self.profiling {
            self.profile_access(block, set, hit);
        }
        (hit, evicted)
    }

    /// Profiling bookkeeping for one access: per-set histograms, the
    /// shadow fully-associative LRU, and (on a miss) classification.
    /// Out of line — production configurations never enable it.
    #[cold]
    fn profile_access(&mut self, block: u64, set: u32, hit: bool) {
        let p = self.profile.as_mut().expect("profiling flag implies state");
        p.profile.set_accesses[set as usize] += 1;
        // Refresh the block's recency in the shadow cache, noting
        // whether it was resident before this access.
        let shadow_hit = match p.shadow.get(&block).copied() {
            Some(stamp) => {
                p.stamps.remove(&stamp);
                true
            }
            None => false,
        };
        p.clock += 1;
        p.shadow.insert(block, p.clock);
        p.stamps.insert(p.clock, block);
        if !shadow_hit && p.shadow.len() > p.cap_blocks {
            let (&victim_stamp, &victim_block) =
                p.stamps.iter().next().expect("shadow cache nonempty");
            p.stamps.remove(&victim_stamp);
            p.shadow.remove(&victim_block);
        }
        if !hit {
            p.profile.set_misses[set as usize] += 1;
            let class = if p.touched.insert(block) {
                MissClass::Compulsory
            } else if shadow_hit {
                MissClass::Conflict
            } else {
                MissClass::Capacity
            };
            p.profile.classes.add(class);
            p.last_class = class;
        }
    }

    /// Non-MRU hit or miss: walk the set and update the recency state,
    /// reporting the evicted block (if any valid line was displaced).
    fn access_slow(
        &mut self,
        base: usize,
        assoc: usize,
        set: u32,
        tag: u64,
    ) -> (bool, Option<u64>) {
        if !matches!(self.repl, Repl::Lru) {
            return self.access_slow_policy(base, assoc, set, tag);
        }
        self.access_slow_lru(base, assoc, set, tag)
    }

    /// The true-LRU set walk (the `order` permutation). Split out of
    /// [`Cache::access_slow`] so the policy-specialized entry points
    /// can reach it without re-testing the [`Repl`] discriminant.
    fn access_slow_lru(
        &mut self,
        base: usize,
        assoc: usize,
        set: u32,
        tag: u64,
    ) -> (bool, Option<u64>) {
        let order = &mut self.order[base..base + assoc];
        let hit_pos = order[1..]
            .iter()
            .position(|&w| self.tags[base + w as usize] == tag);
        if let Some(p) = hit_pos {
            let p = p + 1;
            let w = order[p];
            order.copy_within(0..p, 1);
            order[0] = w;
            self.hits += 1;
            return (true, None);
        }
        // Miss: evict the LRU way (the tail of the order). Untouched
        // (invalid) ways sit at the tail, so cold fills consume them
        // before any valid line is evicted.
        let victim = order[assoc - 1];
        order.copy_within(0..assoc - 1, 1);
        order[0] = victim;
        let old = self.tags[base + victim as usize];
        self.tags[base + victim as usize] = tag;
        self.misses += 1;
        (false, evicted_block(old, set, self.tag_shift))
    }

    /// The PLRU/random set walk: hit detection scans the tags directly
    /// (these policies keep no search order), recency goes through the
    /// policy state, and invalid ways always fill before a victim is
    /// consulted — matching the LRU arm, whose untouched ways sit at
    /// the order tail.
    fn access_slow_policy(
        &mut self,
        base: usize,
        assoc: usize,
        set: u32,
        tag: u64,
    ) -> (bool, Option<u64>) {
        for way in 0..assoc {
            if self.tags[base + way] == tag {
                self.repl.touch(set as usize, assoc, way);
                self.hits += 1;
                return (true, None);
            }
        }
        self.misses += 1;
        let way = match (0..assoc).find(|&w| self.tags[base + w] == INVALID_TAG) {
            Some(w) => w,
            None => self.repl.victim(set as usize, assoc),
        };
        let old = self.tags[base + way];
        self.tags[base + way] = tag;
        self.repl.touch(set as usize, assoc, way);
        (false, evicted_block(old, set, self.tag_shift))
    }

    // Policy-specialized non-MRU entry points for the block engine's
    // shaped dispatch: the caller has already probed (and missed) the
    // MRU shortcut, so these skip the redundant MRU compare and go
    // straight to the one walk their policy needs — no `Repl`
    // discriminant test on the LRU path, one destructure (instead of a
    // match per touch/victim) on the others. State updates are
    // identical to [`Cache::access_with_victim`]; profiling
    // configurations never reach these (they force the slow engine).

    /// Non-MRU access under true LRU. Returns `true` on hit.
    pub(crate) fn access_nonmru_lru(&mut self, addr: u32) -> bool {
        debug_assert!(!self.profiling, "profiling forces the slow engine");
        debug_assert!(matches!(self.repl, Repl::Lru));
        let block = u64::from(addr >> self.set_shift);
        let set = (block as u32) & self.set_mask;
        let tag = block >> self.tag_shift;
        debug_assert_ne!(self.mru[set as usize], block, "caller probes MRU first");
        let assoc = self.cfg.assoc as usize;
        let (hit, _) = self.access_slow_lru(set as usize * assoc, assoc, set, tag);
        self.mru[set as usize] = block;
        hit
    }

    /// Non-MRU access under tree-PLRU. Returns `true` on hit.
    pub(crate) fn access_nonmru_plru(&mut self, addr: u32) -> bool {
        debug_assert!(!self.profiling, "profiling forces the slow engine");
        let block = u64::from(addr >> self.set_shift);
        let set = (block as u32) & self.set_mask;
        let tag = block >> self.tag_shift;
        debug_assert_ne!(self.mru[set as usize], block, "caller probes MRU first");
        let assoc = self.cfg.assoc as usize;
        let base = set as usize * assoc;
        let Repl::Plru(plru) = &mut self.repl else {
            unreachable!("PLRU shape dispatched without the PLRU policy")
        };
        let hit = match (0..assoc).find(|&w| self.tags[base + w] == tag) {
            Some(way) => {
                plru.touch(set as usize, assoc, way);
                self.hits += 1;
                true
            }
            None => {
                let way = match (0..assoc).find(|&w| self.tags[base + w] == INVALID_TAG) {
                    Some(w) => w,
                    None => plru.victim(set as usize, assoc),
                };
                self.tags[base + way] = tag;
                plru.touch(set as usize, assoc, way);
                self.misses += 1;
                false
            }
        };
        self.mru[set as usize] = block;
        hit
    }

    /// Non-MRU access under random eviction. Returns `true` on hit.
    /// Hits draw nothing from the PRNG (as in the generic walk), so
    /// the victim stream stays byte-identical to the reference engine.
    pub(crate) fn access_nonmru_random(&mut self, addr: u32) -> bool {
        debug_assert!(!self.profiling, "profiling forces the slow engine");
        let block = u64::from(addr >> self.set_shift);
        let set = (block as u32) & self.set_mask;
        let tag = block >> self.tag_shift;
        debug_assert_ne!(self.mru[set as usize], block, "caller probes MRU first");
        let assoc = self.cfg.assoc as usize;
        let base = set as usize * assoc;
        let Repl::Random(rng) = &mut self.repl else {
            unreachable!("random shape dispatched without the random policy")
        };
        let hit = match (0..assoc).find(|&w| self.tags[base + w] == tag) {
            Some(way) => {
                rng.touch(set as usize, assoc, way);
                self.hits += 1;
                true
            }
            None => {
                let way = match (0..assoc).find(|&w| self.tags[base + w] == INVALID_TAG) {
                    Some(w) => w,
                    None => rng.victim(set as usize, assoc),
                };
                self.tags[base + way] = tag;
                rng.touch(set as usize, assoc, way);
                self.misses += 1;
                false
            }
        };
        self.mru[set as usize] = block;
        hit
    }

    /// Removes `block` if present, reporting whether it was. Used by
    /// the hierarchy: back-invalidation when an inclusive L2 evicts,
    /// and the probe side of an exclusive L2 (a hit migrates the line
    /// up, so it leaves this level). Clears the MRU shortcut when it
    /// pointed at the removed line — a stale entry would fake hits on
    /// the fast path — and demotes the freed way to the LRU tail so
    /// the next fill reuses it.
    pub(crate) fn extract_block(&mut self, block: u64) -> bool {
        let set = (block as u32) & self.set_mask;
        let tag = block >> self.tag_shift;
        let assoc = self.cfg.assoc as usize;
        let base = set as usize * assoc;
        let Some(way) = (0..assoc).find(|&w| self.tags[base + w] == tag) else {
            return false;
        };
        self.tags[base + way] = INVALID_TAG;
        if self.mru[set as usize] == block {
            self.mru[set as usize] = INVALID_TAG;
        }
        if matches!(self.repl, Repl::Lru) {
            let order = &mut self.order[base..base + assoc];
            let pos = order
                .iter()
                .position(|&w| usize::from(w) == way)
                .expect("resident way appears in its set's order");
            order.copy_within(pos + 1.., pos);
            order[assoc - 1] = way as u16;
        }
        true
    }

    /// Removes `block` if present (inclusive back-invalidation).
    pub(crate) fn invalidate_block(&mut self, block: u64) {
        self.extract_block(block);
    }

    /// Inserts `block` without counting an access — an exclusive L2
    /// absorbing an L1 victim. Lands on the existing line if present
    /// (refreshing recency), else an invalid way, else the policy
    /// victim; returns the displaced block, if any.
    pub(crate) fn insert_block(&mut self, block: u64) -> Option<u64> {
        let set = (block as u32) & self.set_mask;
        let tag = block >> self.tag_shift;
        let assoc = self.cfg.assoc as usize;
        let base = set as usize * assoc;
        if matches!(self.repl, Repl::Lru) {
            let order = &mut self.order[base..base + assoc];
            // Invalid ways always sit at the order tail, so the tail is
            // the landing slot whether or not the set is full.
            let pos = order
                .iter()
                .position(|&w| self.tags[base + usize::from(w)] == tag)
                .unwrap_or(assoc - 1);
            let way = usize::from(order[pos]);
            order.copy_within(0..pos, 1);
            order[0] = way as u16;
            let old = self.tags[base + way];
            self.tags[base + way] = tag;
            self.mru[set as usize] = block;
            return (old != tag)
                .then(|| evicted_block(old, set, self.tag_shift))
                .flatten();
        }
        let existing = (0..assoc).find(|&w| self.tags[base + w] == tag);
        let way = match existing {
            Some(w) => w,
            None => match (0..assoc).find(|&w| self.tags[base + w] == INVALID_TAG) {
                Some(w) => w,
                None => self.repl.victim(set as usize, assoc),
            },
        };
        let old = self.tags[base + way];
        self.tags[base + way] = tag;
        self.repl.touch(set as usize, assoc, way);
        self.mru[set as usize] = block;
        (old != tag)
            .then(|| evicted_block(old, set, self.tag_shift))
            .flatten()
    }

    /// Total hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines and resets counters.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.mru.fill(INVALID_TAG);
        let assoc = self.cfg.assoc as usize;
        for (i, slot) in self.order.iter_mut().enumerate() {
            *slot = (i % assoc) as u16;
        }
        self.hits = 0;
        self.misses = 0;
        self.repl.reset(self.cfg.sets() as usize, self.cfg.assoc());
        if self.profiling {
            self.profile = Some(Box::new(ProfileState::new(self.cfg)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(8192, 4, 32).is_ok());
        assert!(CacheConfig::new(0, 4, 32).is_err());
        assert!(CacheConfig::new(8192, 3, 32).is_err());
        assert!(CacheConfig::new(8192, 4, 48).is_err());
        assert!(CacheConfig::new(64, 4, 32).is_err()); // smaller than one set
    }

    #[test]
    fn paper_training_geometry() {
        let c = CacheConfig::paper_training();
        assert_eq!(c.sets(), 256);
        assert_eq!(c.assoc(), 4);
        assert_eq!(c.block_bytes(), 32);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::kb(8, 4));
        assert!(!c.access(0x2000_0000));
        assert!(c.access(0x2000_0000));
        assert!(c.access(0x2000_001f)); // same block
        assert!(!c.access(0x2000_0020)); // next block
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        // Direct test of LRU: 2-way cache; three blocks mapping to the
        // same set must evict the least-recently-used.
        let cfg = CacheConfig::kb(8, 2); // 128 sets, set stride = 128*32 = 4096
        let mut c = Cache::new(cfg);
        let stride = cfg.sets() * cfg.block_bytes();
        let a = 0x2000_0000;
        let b = a + stride;
        let d = a + 2 * stride;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a; b becomes LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a)); // a still resident
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn full_associativity_holds_working_set() {
        let cfg = CacheConfig::kb(8, 4);
        let mut c = Cache::new(cfg);
        let stride = cfg.sets() * cfg.block_bytes();
        let addrs: Vec<u32> = (0..4).map(|i| 0x2000_0000 + i * stride).collect();
        for &a in &addrs {
            assert!(!c.access(a));
        }
        // All four ways of the set are occupied; all should now hit.
        for &a in &addrs {
            assert!(c.access(a));
        }
    }

    #[test]
    fn capacity_miss_on_large_working_set() {
        let cfg = CacheConfig::kb(8, 4);
        let mut c = Cache::new(cfg);
        // Touch 16 KiB (twice the capacity) twice; second pass must
        // miss everywhere under LRU with a sequential scan.
        let blocks = (16 * 1024) / cfg.block_bytes();
        for pass in 0..2 {
            for i in 0..blocks {
                let hit = c.access(0x2000_0000 + i * cfg.block_bytes());
                assert!(!hit, "pass {pass} block {i} unexpectedly hit");
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(CacheConfig::kb(8, 4));
        c.access(0x2000_0000);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0x2000_0000));
    }

    #[test]
    fn display_format() {
        assert_eq!(CacheConfig::kb(16, 8).to_string(), "16KB 8-way 32B-block");
    }

    #[test]
    fn profiling_does_not_change_hit_miss_behaviour() {
        let cfg = CacheConfig::kb(8, 2);
        let mut plain = Cache::new(cfg);
        let mut profiled = Cache::new(cfg);
        profiled.enable_profiling();
        let stride = cfg.sets() * cfg.block_bytes();
        for i in 0..2000u32 {
            let addr = 0x2000_0000 + (i % 7) * stride + (i % 97) * 4;
            assert_eq!(plain.access(addr), profiled.access(addr), "access {i}");
        }
        assert_eq!(plain.hits(), profiled.hits());
        assert_eq!(plain.misses(), profiled.misses());
        let profile = profiled.take_profile().expect("profiling was on");
        assert_eq!(profile.classes.total(), plain.misses());
        assert_eq!(profile.set_misses.iter().sum::<u64>(), plain.misses());
        assert_eq!(profile.set_accesses.iter().sum::<u64>(), 2000);
    }

    #[test]
    fn compulsory_misses_on_first_touch() {
        let mut c = Cache::new(CacheConfig::kb(8, 4));
        c.enable_profiling();
        c.access(0x2000_0000);
        c.access(0x2000_0020);
        c.access(0x2000_0000); // hit
        let p = c.profile().unwrap();
        assert_eq!(p.classes.compulsory, 2);
        assert_eq!(p.classes.capacity, 0);
        assert_eq!(p.classes.conflict, 0);
    }

    #[test]
    fn conflict_misses_detected_by_shadow_cache() {
        // 2-way cache: round-robin over 3 blocks in ONE set thrashes
        // under LRU, but a fully-associative cache of the same size
        // holds all 3 — so every post-compulsory miss is a conflict.
        let cfg = CacheConfig::kb(8, 2);
        let mut c = Cache::new(cfg);
        c.enable_profiling();
        let stride = cfg.sets() * cfg.block_bytes();
        for round in 0..10 {
            for i in 0..3u32 {
                let hit = c.access(0x2000_0000 + i * stride);
                assert!(!hit, "round {round} block {i}");
            }
        }
        let p = c.profile().unwrap();
        assert_eq!(p.classes.compulsory, 3);
        assert_eq!(p.classes.conflict, 27);
        assert_eq!(p.classes.capacity, 0);
        // All misses land in the single contested set.
        assert_eq!(p.set_misses.iter().filter(|&&m| m > 0).count(), 1);
    }

    #[test]
    fn capacity_misses_on_oversized_working_set() {
        // Sequential scan over 2x the cache capacity: after the first
        // pass, repeats miss in the fully-associative shadow too.
        let cfg = CacheConfig::kb(8, 4);
        let mut c = Cache::new(cfg);
        c.enable_profiling();
        let blocks = 2 * cfg.size_bytes() / cfg.block_bytes();
        for _ in 0..2 {
            for i in 0..blocks {
                c.access(0x2000_0000 + i * cfg.block_bytes());
            }
        }
        let p = c.profile().unwrap();
        assert_eq!(p.classes.compulsory, u64::from(blocks));
        assert_eq!(p.classes.capacity, u64::from(blocks));
        assert_eq!(p.classes.conflict, 0);
    }

    #[test]
    fn reset_clears_profile_but_keeps_profiling_enabled() {
        let mut c = Cache::new(CacheConfig::kb(8, 4));
        c.enable_profiling();
        c.access(0x2000_0000);
        c.reset();
        assert!(!c.access(0x2000_0000)); // compulsory again after reset
        let p = c.profile().unwrap();
        assert_eq!(p.classes.compulsory, 1);
        assert_eq!(p.set_accesses.iter().sum::<u64>(), 1);
    }

    #[test]
    fn with_policy_reports_and_defaults() {
        let cfg = CacheConfig::kb(8, 4);
        assert_eq!(Cache::new(cfg).policy(), Policy::Lru);
        assert_eq!(
            Cache::with_policy(cfg, Policy::Plru, 0).policy(),
            Policy::Plru
        );
        assert_eq!(
            Cache::with_policy(cfg, Policy::Random, 7).policy(),
            Policy::Random
        );
    }

    #[test]
    fn every_policy_holds_a_set_sized_working_set() {
        // Any sane policy keeps a working set that exactly fills one
        // set resident across re-touches (no evictions ever needed).
        for policy in [Policy::Lru, Policy::Plru, Policy::Random] {
            let cfg = CacheConfig::kb(8, 4);
            let mut c = Cache::with_policy(cfg, policy, 99);
            let stride = cfg.sets() * cfg.block_bytes();
            let addrs: Vec<u32> = (0..4).map(|i| 0x2000_0000 + i * stride).collect();
            for &a in &addrs {
                assert!(!c.access(a), "{policy}: cold fill");
            }
            for _ in 0..3 {
                for &a in &addrs {
                    assert!(c.access(a), "{policy}: resident working set");
                }
            }
        }
    }

    #[test]
    fn plru_evicts_unprotected_way() {
        // 2-way PLRU degenerates to true LRU: a(miss) b(miss) a(hit)
        // d(miss) must evict b.
        let cfg = CacheConfig::kb(8, 2);
        let mut c = Cache::with_policy(cfg, Policy::Plru, 0);
        let stride = cfg.sets() * cfg.block_bytes();
        let (a, b, d) = (0x2000_0000, 0x2000_0000 + stride, 0x2000_0000 + 2 * stride);
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a));
        assert!(!c.access(d));
        assert!(c.access(a), "a was protected");
        assert!(!c.access(b), "b was the PLRU victim");
    }

    #[test]
    fn random_policy_is_deterministic_and_stays_in_set() {
        let cfg = CacheConfig::kb(8, 2);
        let mut x = Cache::with_policy(cfg, Policy::Random, 1234);
        let mut y = Cache::with_policy(cfg, Policy::Random, 1234);
        let stride = cfg.sets() * cfg.block_bytes();
        for i in 0..4000u32 {
            let addr = 0x2000_0000 + (i % 5) * stride + (i % 11) * 4;
            assert_eq!(x.access(addr), y.access(addr), "access {i}");
        }
        assert_eq!(x.hits(), y.hits());
        assert_eq!(x.misses(), y.misses());
    }

    #[test]
    fn access_with_victim_reports_displaced_blocks() {
        let cfg = CacheConfig::kb(8, 2);
        let mut c = Cache::new(cfg);
        let stride = cfg.sets() * cfg.block_bytes();
        let a = 0x2000_0000u32;
        // Cold fills displace nothing.
        assert_eq!(c.access_with_victim(a), (false, None));
        assert_eq!(c.access_with_victim(a + stride), (false, None));
        // Third block in the set evicts a's block (the LRU).
        let (hit, victim) = c.access_with_victim(a + 2 * stride);
        assert!(!hit);
        assert_eq!(victim, Some(u64::from(a >> 5)));
    }

    #[test]
    fn extract_block_clears_residency_and_mru() {
        let mut c = Cache::new(CacheConfig::kb(8, 4));
        let a = 0x2000_0000u32;
        let block = u64::from(a >> 5);
        c.access(a);
        assert!(c.extract_block(block));
        assert!(!c.extract_block(block), "already gone");
        // The MRU shortcut must not resurrect the line.
        assert!(!c.access(a), "invalidated line re-misses");
    }

    #[test]
    fn insert_block_fills_and_reports_victims() {
        let cfg = CacheConfig::kb(8, 2);
        let mut c = Cache::new(cfg);
        let set_stride = u64::from(cfg.sets());
        let b0 = 0x10_0000u64;
        assert_eq!(c.insert_block(b0), None);
        assert_eq!(c.insert_block(b0 + set_stride), None);
        // Set full: a third insert displaces the LRU (b0).
        assert_eq!(c.insert_block(b0 + 2 * set_stride), Some(b0));
        // Re-inserting a resident block displaces nothing.
        assert_eq!(c.insert_block(b0 + set_stride), None);
        // Inserted lines are resident: the matching address hits.
        assert!(c.access((b0 + set_stride) as u32 * 32));
    }
}
