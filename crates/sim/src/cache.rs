//! A set-associative, LRU, write-allocate L1 data-cache model.
//!
//! Matches the paper's simulated cache: the training configuration is a
//! 4-way, 256-set, 32-byte-block data cache (32 KiB); the evaluation
//! sweeps associativity (2/4/8) and capacity (8–64 KiB).

use std::fmt;

/// Geometry of a cache: total capacity, associativity, and block size.
///
/// # Example
///
/// ```
/// use dl_sim::CacheConfig;
/// let c = CacheConfig::paper_training();
/// assert_eq!(c.sets(), 256);
/// assert_eq!(c.size_bytes(), 32 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size: u32,
    assoc: u32,
    block: u32,
}

/// Error constructing an invalid [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfigError(String);

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cache configuration: {}", self.0)
    }
}

impl std::error::Error for CacheConfigError {}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Errors
    ///
    /// Returns an error unless `size`, `assoc`, and `block` are powers
    /// of two with `size >= assoc * block`.
    pub fn new(size: u32, assoc: u32, block: u32) -> Result<Self, CacheConfigError> {
        for (name, v) in [("size", size), ("assoc", assoc), ("block", block)] {
            if v == 0 || !v.is_power_of_two() {
                return Err(CacheConfigError(format!(
                    "{name} = {v} must be a nonzero power of two"
                )));
            }
        }
        if size < assoc * block {
            return Err(CacheConfigError(format!(
                "size {size} smaller than one set (assoc {assoc} x block {block})"
            )));
        }
        Ok(CacheConfig { size, assoc, block })
    }

    /// The paper's training-phase cache: 4-way, 256 sets, 32-byte
    /// blocks (32 KiB).
    #[must_use]
    pub fn paper_training() -> Self {
        CacheConfig::new(32 * 1024, 4, 32).expect("static config is valid")
    }

    /// The paper's baseline evaluation cache (Table 11): 8 KiB, 4-way,
    /// 32-byte blocks.
    #[must_use]
    pub fn paper_baseline() -> Self {
        CacheConfig::new(8 * 1024, 4, 32).expect("static config is valid")
    }

    /// A `size_kb`-KiB cache with the given associativity and 32-byte
    /// blocks, as used in the paper's sweeps.
    ///
    /// # Panics
    ///
    /// Panics if the resulting geometry is invalid.
    #[must_use]
    pub fn kb(size_kb: u32, assoc: u32) -> Self {
        CacheConfig::new(size_kb * 1024, assoc, 32).expect("invalid sweep geometry")
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u32 {
        self.size
    }

    /// Associativity (ways per set).
    #[must_use]
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Block (line) size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u32 {
        self.block
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.size / (self.assoc * self.block)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_training()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB {}-way {}B-block",
            self.size / 1024,
            self.assoc,
            self.block
        )
    }
}

const INVALID_TAG: u64 = u64::MAX;

/// A simulated data cache with true-LRU replacement and write-allocate
/// stores.
///
/// Replacement state is a per-set MRU-first permutation of way
/// indices (`order`), not timestamps: a hit rotates the touched way
/// to the front, a miss evicts the way at the tail. Repeated accesses
/// to the hottest block of a set — by far the common case in loop
/// code — take a one-compare fast path that neither walks the set nor
/// rewrites the recency state.
///
/// # Example
///
/// ```
/// use dl_sim::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::kb(8, 2));
/// assert!(!c.access(0x1000_0000)); // cold miss
/// assert!(c.access(0x1000_0004));  // same 32-byte block
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // tags[set * assoc + way]; INVALID_TAG means empty.
    tags: Vec<u64>,
    // order[set * assoc + i] is the way index of the i-th most
    // recently used way of `set` (i = 0 ⇒ MRU, i = assoc-1 ⇒ LRU).
    order: Vec<u16>,
    set_shift: u32,
    set_mask: u32,
    tag_shift: u32,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let assoc = cfg.assoc() as usize;
        let ways = cfg.sets() as usize * assoc;
        let mut order = vec![0u16; ways];
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = (i % assoc) as u16;
        }
        Cache {
            cfg,
            tags: vec![INVALID_TAG; ways],
            order,
            set_shift: cfg.block_bytes().trailing_zeros(),
            set_mask: cfg.sets() - 1,
            tag_shift: (cfg.sets() - 1).count_ones(),
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Simulates one access to `addr`, returning `true` on hit.
    /// On a miss the block is filled (evicting the LRU way).
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        let block = u64::from(addr >> self.set_shift);
        let set = (block as u32) & self.set_mask;
        let tag = block >> self.tag_shift;
        let assoc = self.cfg.assoc as usize;
        let base = set as usize * assoc;
        // Fast path: the MRU way already holds the block, so recency
        // state is already correct — one compare, no set walk.
        if self.tags[base + self.order[base] as usize] == tag {
            self.hits += 1;
            return true;
        }
        self.access_slow(base, assoc, tag)
    }

    /// Non-MRU hit or miss: walk the set and update the recency order.
    fn access_slow(&mut self, base: usize, assoc: usize, tag: u64) -> bool {
        let order = &mut self.order[base..base + assoc];
        let hit_pos = order[1..]
            .iter()
            .position(|&w| self.tags[base + w as usize] == tag);
        if let Some(p) = hit_pos {
            let p = p + 1;
            let w = order[p];
            order.copy_within(0..p, 1);
            order[0] = w;
            self.hits += 1;
            return true;
        }
        // Miss: evict the LRU way (the tail of the order). Untouched
        // (invalid) ways sit at the tail, so cold fills consume them
        // before any valid line is evicted.
        let victim = order[assoc - 1];
        order.copy_within(0..assoc - 1, 1);
        order[0] = victim;
        self.tags[base + victim as usize] = tag;
        self.misses += 1;
        false
    }

    /// Total hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all lines and resets counters.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID_TAG);
        let assoc = self.cfg.assoc as usize;
        for (i, slot) in self.order.iter_mut().enumerate() {
            *slot = (i % assoc) as u16;
        }
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(8192, 4, 32).is_ok());
        assert!(CacheConfig::new(0, 4, 32).is_err());
        assert!(CacheConfig::new(8192, 3, 32).is_err());
        assert!(CacheConfig::new(8192, 4, 48).is_err());
        assert!(CacheConfig::new(64, 4, 32).is_err()); // smaller than one set
    }

    #[test]
    fn paper_training_geometry() {
        let c = CacheConfig::paper_training();
        assert_eq!(c.sets(), 256);
        assert_eq!(c.assoc(), 4);
        assert_eq!(c.block_bytes(), 32);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::kb(8, 4));
        assert!(!c.access(0x2000_0000));
        assert!(c.access(0x2000_0000));
        assert!(c.access(0x2000_001f)); // same block
        assert!(!c.access(0x2000_0020)); // next block
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        // Direct test of LRU: 2-way cache; three blocks mapping to the
        // same set must evict the least-recently-used.
        let cfg = CacheConfig::kb(8, 2); // 128 sets, set stride = 128*32 = 4096
        let mut c = Cache::new(cfg);
        let stride = cfg.sets() * cfg.block_bytes();
        let a = 0x2000_0000;
        let b = a + stride;
        let d = a + 2 * stride;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a; b becomes LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a)); // a still resident
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn full_associativity_holds_working_set() {
        let cfg = CacheConfig::kb(8, 4);
        let mut c = Cache::new(cfg);
        let stride = cfg.sets() * cfg.block_bytes();
        let addrs: Vec<u32> = (0..4).map(|i| 0x2000_0000 + i * stride).collect();
        for &a in &addrs {
            assert!(!c.access(a));
        }
        // All four ways of the set are occupied; all should now hit.
        for &a in &addrs {
            assert!(c.access(a));
        }
    }

    #[test]
    fn capacity_miss_on_large_working_set() {
        let cfg = CacheConfig::kb(8, 4);
        let mut c = Cache::new(cfg);
        // Touch 16 KiB (twice the capacity) twice; second pass must
        // miss everywhere under LRU with a sequential scan.
        let blocks = (16 * 1024) / cfg.block_bytes();
        for pass in 0..2 {
            for i in 0..blocks {
                let hit = c.access(0x2000_0000 + i * cfg.block_bytes());
                assert!(!hit, "pass {pass} block {i} unexpectedly hit");
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = Cache::new(CacheConfig::kb(8, 4));
        c.access(0x2000_0000);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0x2000_0000));
    }

    #[test]
    fn display_format() {
        assert_eq!(CacheConfig::kb(16, 8).to_string(), "16KB 8-way 32B-block");
    }
}
