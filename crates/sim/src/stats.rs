//! Per-run measurement results: the raw material for the paper's
//! training phase and evaluation metrics.

use crate::cache::CacheProfile;

/// Everything measured during one simulated run.
///
/// Vectors are indexed by static instruction index (parallel to
/// `Program::insts`). `M(i, C)` from the paper is `load_misses[i]`;
/// `E(i)` is `exec_counts[i]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunResult {
    /// Total dynamic instructions executed.
    pub instructions: u64,
    /// Total D-cache accesses (loads + stores).
    pub dcache_accesses: u64,
    /// Total D-cache misses (loads + stores; write-allocate).
    pub dcache_misses: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
    /// Total load misses — the paper's `M(P(I), C)` denominator.
    pub load_misses_total: u64,
    /// Per-instruction execution counts (`E(i)`).
    pub exec_counts: Vec<u64>,
    /// Per-instruction load miss counts (`M(i, C)`; zero for non-loads).
    pub load_misses: Vec<u64>,
    /// Per-instruction load hit counts (zero for non-loads).
    pub load_hits: Vec<u64>,
    /// Prefetch requests issued by instrumented load sites.
    pub prefetches_issued: u64,
    /// L2 hits (zero unless an L2 is configured).
    pub l2_hits: u64,
    /// L2 misses (zero unless an L2 is configured).
    pub l2_misses: u64,
    /// Prefetches that actually filled a line into the L1 (issued
    /// minus those that hit a resident line).
    pub prefetch_fills: u64,
    /// Prefetch fills whose line was later touched by a demand load
    /// before eviction — the prefetcher's useful-fill count.
    pub prefetch_useful: u64,
    /// Values printed via the `print_int` syscall.
    pub output: Vec<i32>,
    /// Exit code passed to the `exit` syscall (or `$v0` on fallthrough
    /// return from the entry function).
    pub exit_code: i32,
    /// Cache profile (miss classes, per-set histograms). `Some` only
    /// when [`crate::RunConfig::classify_misses`] was set.
    pub cache_profile: Option<CacheProfile>,
    /// Per-instruction miss counts by class, indexed
    /// `[compulsory, capacity, conflict]` (see
    /// [`crate::cache::MissClass::index`]); zero rows for non-loads.
    /// `Some` only when miss classification was enabled.
    pub load_miss_classes: Option<Vec<[u64; 3]>>,
}

impl RunResult {
    /// Creates a zeroed result sized for `n` static instructions.
    #[must_use]
    pub fn with_len(n: usize) -> Self {
        RunResult {
            exec_counts: vec![0; n],
            load_misses: vec![0; n],
            load_hits: vec![0; n],
            ..RunResult::default()
        }
    }

    /// The miss count of static load `index` (`M(i, C)`).
    #[must_use]
    pub fn misses_of(&self, index: usize) -> u64 {
        self.load_misses[index]
    }

    /// Sum of `M(i, C)` over a set of static instruction indices.
    #[must_use]
    pub fn misses_of_set(&self, set: &[usize]) -> u64 {
        set.iter().map(|&i| self.load_misses[i]).sum()
    }

    /// Miss rate of static load `index`, or 0 if never executed.
    #[must_use]
    pub fn miss_rate_of(&self, index: usize) -> f64 {
        let total = self.load_misses[index] + self.load_hits[index];
        if total == 0 {
            0.0
        } else {
            self.load_misses[index] as f64 / total as f64
        }
    }

    /// Verifies the cross-field invariants every finished run must
    /// satisfy, returning the first violation. Debug builds assert
    /// this at the end of every simulation; tests may call it in
    /// release builds too.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_consistency(&self) -> Result<(), String> {
        let site_misses: u64 = self.load_misses.iter().sum();
        if site_misses != self.load_misses_total {
            return Err(format!(
                "per-site misses {site_misses} != load_misses_total {}",
                self.load_misses_total
            ));
        }
        let site_hits: u64 = self.load_hits.iter().sum();
        if site_hits + self.load_misses_total != self.loads {
            return Err(format!(
                "hits {site_hits} + misses {} != dynamic loads {}",
                self.load_misses_total, self.loads
            ));
        }
        if self.loads + self.stores != self.dcache_accesses {
            return Err(format!(
                "loads {} + stores {} != dcache accesses {}",
                self.loads, self.stores, self.dcache_accesses
            ));
        }
        let execs: u64 = self.exec_counts.iter().sum();
        if execs != self.instructions {
            return Err(format!(
                "exec_counts sum {execs} != instructions {}",
                self.instructions
            ));
        }
        if self.prefetch_fills > self.prefetches_issued {
            return Err(format!(
                "prefetch fills {} > issued {}",
                self.prefetch_fills, self.prefetches_issued
            ));
        }
        if self.prefetch_useful > self.prefetch_fills {
            return Err(format!(
                "prefetch useful {} > fills {}",
                self.prefetch_useful, self.prefetch_fills
            ));
        }
        if self.l2_hits + self.l2_misses != 0
            && self.l2_hits + self.l2_misses != self.dcache_misses + self.prefetch_fills
        {
            return Err(format!(
                "L2 accesses {} != demand misses {} + prefetch fills {}",
                self.l2_hits + self.l2_misses,
                self.dcache_misses,
                self.prefetch_fills
            ));
        }
        if let Some(classes) = &self.load_miss_classes {
            for (i, row) in classes.iter().enumerate() {
                let class_sum: u64 = row.iter().sum();
                if class_sum != self.load_misses[i] {
                    return Err(format!(
                        "site {i}: class sum {class_sum} != misses {}",
                        self.load_misses[i]
                    ));
                }
            }
        }
        if let Some(profile) = &self.cache_profile {
            let classified = profile.classes.total();
            let set_misses: u64 = profile.set_misses.iter().sum();
            if classified != set_misses {
                return Err(format!(
                    "classified misses {classified} != per-set misses {set_misses}"
                ));
            }
            // The profile counts every cache fill, including prefetch
            // fills; demand misses are a lower bound.
            if classified < self.dcache_misses {
                return Err(format!(
                    "classified misses {classified} < demand misses {}",
                    self.dcache_misses
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_len_sizes_vectors() {
        let r = RunResult::with_len(5);
        assert_eq!(r.exec_counts.len(), 5);
        assert_eq!(r.load_misses.len(), 5);
        assert_eq!(r.load_hits.len(), 5);
    }

    #[test]
    fn set_miss_sum() {
        let mut r = RunResult::with_len(4);
        r.load_misses = vec![5, 0, 3, 2];
        assert_eq!(r.misses_of_set(&[0, 2]), 8);
        assert_eq!(r.misses_of_set(&[]), 0);
    }

    #[test]
    fn consistency_checker_catches_drift() {
        let mut r = RunResult::with_len(2);
        assert!(r.check_consistency().is_ok());
        r.load_misses[0] = 3;
        let err = r.check_consistency().unwrap_err();
        assert!(err.contains("load_misses_total"), "{err}");
        r.load_misses_total = 3;
        r.loads = 3;
        r.dcache_accesses = 3;
        assert!(r.check_consistency().is_ok());
        r.load_miss_classes = Some(vec![[1, 1, 0], [0, 0, 0]]);
        let err = r.check_consistency().unwrap_err();
        assert!(err.contains("class sum"), "{err}");
        r.load_miss_classes = Some(vec![[1, 1, 1], [0, 0, 0]]);
        assert!(r.check_consistency().is_ok());
    }

    #[test]
    fn miss_rate() {
        let mut r = RunResult::with_len(2);
        r.load_misses[0] = 3;
        r.load_hits[0] = 1;
        assert!((r.miss_rate_of(0) - 0.75).abs() < 1e-12);
        assert_eq!(r.miss_rate_of(1), 0.0);
    }
}
