//! Random MIPS assembly generation for property tests.
//!
//! Emits assembly *strings* (this crate stays dependency-free); the
//! consuming test parses them with `dl_mips::parse::parse_asm`. Two
//! families:
//!
//! - [`arb_flow_program`]: multi-function, call-free programs rich in
//!   loads and arbitrary intra-function control flow — the original
//!   input space of the predictor-equivalence suite.
//! - [`arb_call_program`]: call-bearing programs — direct `jal`
//!   calls, calls inside counted loops, and call chains nested two or
//!   more functions deep — the input space of the interprocedural
//!   reuse-profile engine. Calls only target higher-numbered
//!   functions, so generated call graphs are acyclic by construction
//!   and every mid-chain function saves/restores `$ra`.
//!
//! [`arb_program`] mixes the two families, so one `cases` loop
//! exercises both.

use crate::Rng;

/// Appends 1–5 random body instructions to `s`: stack reloads,
/// register-based (possibly chased) dereferences, global accesses,
/// pointer arithmetic, and stores — the instruction mix the
/// classifiers and predictors disagree over.
fn block_body(rng: &mut Rng, s: &mut String) {
    for _ in 0..1 + rng.index(5) {
        let (d, a, c) = (rng.index(8), rng.index(8), rng.index(8));
        match rng.index(8) {
            0 => s.push_str(&format!("\tlw $t{d}, {}($sp)\n", 4 * rng.index(16))),
            1 => s.push_str(&format!("\tlw $t{d}, {}($t{a})\n", 4 * rng.index(8))),
            2 => s.push_str(&format!("\tlw $t{d}, {}($gp)\n", 4 * rng.index(16))),
            3 => s.push_str(&format!(
                "\taddiu $t{d}, $t{a}, {}\n",
                rng.range_i32(-8, 64)
            )),
            4 => s.push_str(&format!("\tsll $t{d}, $t{a}, {}\n", 1 + rng.index(3))),
            5 => s.push_str(&format!("\tli $t{d}, {}\n", rng.index(4096))),
            6 => s.push_str(&format!("\tsw $t{d}, {}($sp)\n", 4 * rng.index(16))),
            _ => s.push_str(&format!("\taddu $t{d}, $t{a}, $t{c}\n")),
        }
    }
}

/// A random multi-function, call-free program with arbitrary
/// intra-function control flow (forward and backward jumps and
/// branches between 1–4 blocks per function).
#[must_use]
pub fn arb_flow_program(rng: &mut Rng) -> String {
    let nfuncs = 1 + rng.index(3);
    let mut s = String::new();
    for fi in 0..nfuncs {
        if fi == 0 {
            s.push_str("main:\n");
        } else {
            s.push_str(&format!("f{fi}:\n"));
        }
        let nblocks = 1 + rng.index(4);
        for b in 0..nblocks {
            s.push_str(&format!(".L{fi}_{b}:\n"));
            block_body(rng, &mut s);
            let target = rng.index(nblocks);
            match rng.index(3) {
                0 => {}
                1 => s.push_str(&format!("\tj .L{fi}_{target}\n")),
                _ => s.push_str(&format!(
                    "\tbne $t{}, $zero, .L{fi}_{target}\n",
                    rng.index(8)
                )),
            }
        }
        s.push_str("\tjr $ra\n");
    }
    s
}

/// A random call-bearing program: `main` plus 1–3 callees. Every
/// non-leaf function calls exactly one higher-numbered function —
/// either as a plain direct call or inside a counted loop (trip
/// 2–7) — so chains nest up to three functions deep and the call
/// graph is acyclic. Mid-chain functions save and restore `$ra`
/// around their call.
#[must_use]
pub fn arb_call_program(rng: &mut Rng) -> String {
    let nfuncs = 2 + rng.index(3);
    let mut s = String::new();
    for fi in 0..nfuncs {
        if fi == 0 {
            s.push_str("main:\n");
        } else {
            s.push_str(&format!("f{fi}:\n"));
        }
        let makes_calls = fi + 1 < nfuncs;
        let saves_ra = fi > 0 && makes_calls;
        if saves_ra {
            s.push_str("\taddiu $sp, $sp, -8\n\tsw $ra, 4($sp)\n");
        }
        block_body(rng, &mut s);
        if makes_calls {
            let callee = fi + 1 + rng.index(nfuncs - fi - 1);
            if rng.chance(0.5) {
                // Call inside a counted loop: the shape interprocedural
                // summary inlining must price (callee footprint re-walked
                // every iteration). A saved register holds the counter so
                // the callee cannot clobber it.
                let trip = 2 + rng.index(6);
                s.push_str(&format!("\tli $s{fi}, {trip}\n.Lcall{fi}:\n"));
                s.push_str(&format!("\tjal f{callee}\n"));
                s.push_str(&format!(
                    "\taddiu $s{fi}, $s{fi}, -1\n\tbgtz $s{fi}, .Lcall{fi}\n"
                ));
            } else {
                s.push_str(&format!("\tjal f{callee}\n"));
            }
            block_body(rng, &mut s);
        }
        if saves_ra {
            s.push_str("\tlw $ra, 4($sp)\n\taddiu $sp, $sp, 8\n");
        }
        s.push_str("\tjr $ra\n");
    }
    s
}

/// A random program from either family: call-free control flow or
/// call-bearing, 50/50.
#[must_use]
pub fn arb_program(rng: &mut Rng) -> String {
    if rng.chance(0.5) {
        arb_call_program(rng)
    } else {
        arb_flow_program(rng)
    }
}

/// A strided scan: `trips` loads stepping `stride` bytes through the
/// global segment, the regular access pattern a PC-indexed stride
/// prefetcher must lock onto (and PLRU sweeps evict predictably).
/// `stride` is rounded up to a positive multiple of 4.
#[must_use]
pub fn strided_scan_program(stride: u32, trips: u32) -> String {
    let stride = stride.next_multiple_of(4).max(4);
    let trips = trips.max(1);
    format!(
        "main:\n\
         \tli $t0, {trips}\n\
         \tmove $t1, $gp\n\
         .Lscan:\n\
         \tlw $t2, 0($t1)\n\
         \taddiu $t1, $t1, {stride}\n\
         \taddiu $t0, $t0, -1\n\
         \tbgtz $t0, .Lscan\n\
         \tli $v0, 10\n\
         \tli $a0, 0\n\
         \tsyscall\n"
    )
}

/// A pointer chase: builds an in-memory linked chain whose nodes sit
/// `stride` bytes apart in the global segment, then walks it `trips`
/// times. Each hop's address comes from the previous load, so no
/// stride is observable at the chasing site — the anti-pattern the
/// prefetcher must *not* win on. `stride` is rounded up to a positive
/// multiple of 8 (node = next pointer + payload word).
#[must_use]
pub fn pointer_chase_program(stride: u32, nodes: u32, trips: u32) -> String {
    let stride = stride.next_multiple_of(8).max(8);
    let nodes = nodes.max(2);
    let trips = trips.max(1);
    format!(
        "main:\n\
         \tli $t0, {nodes}\n\
         \tmove $t1, $gp\n\
         .Lbuild:\n\
         \taddiu $t2, $t1, {stride}\n\
         \tsw $t2, 0($t1)\n\
         \tsw $t0, 4($t1)\n\
         \tmove $t1, $t2\n\
         \taddiu $t0, $t0, -1\n\
         \tbgtz $t0, .Lbuild\n\
         \tsw $gp, 0($t1)\n\
         \tli $t3, {trips}\n\
         .Lwalk:\n\
         \tmove $t1, $gp\n\
         \tli $t0, {nodes}\n\
         .Lhop:\n\
         \tlw $t4, 4($t1)\n\
         \tlw $t1, 0($t1)\n\
         \taddiu $t0, $t0, -1\n\
         \tbgtz $t0, .Lhop\n\
         \taddiu $t3, $t3, -1\n\
         \tbgtz $t3, .Lwalk\n\
         \tli $v0, 10\n\
         \tli $a0, 0\n\
         \tsyscall\n"
    )
}

/// A stack-slot-heavy program: dense runs of `$sp`-relative loads and
/// stores over small 4-aligned offsets — the exact shape the block
/// engine's decode-time same-line coalescing fuses into groups —
/// interleaved with ALU work that must not break a group, and the
/// occasional run-breaker (an access through a different base
/// register, a balanced `$sp` push/pop, or an aliased copy of `$sp`)
/// that forces the conservative bail-out. The whole body sits in a
/// counted loop so the same decoded groups replay many times, and the
/// program always exits cleanly: every address is a small in-bounds
/// `$sp`/`$gp` offset, so the only trap it can raise is a step limit.
#[must_use]
pub fn arb_stack_heavy_program(rng: &mut Rng) -> String {
    let trips = 2 + rng.index(7);
    let mut s = String::new();
    s.push_str("main:\n");
    // The initial `$sp` has little headroom above it; open a frame so
    // every positive offset below lands on mapped stack.
    s.push_str("\taddiu $sp, $sp, -64\n");
    s.push_str(&format!("\tli $s0, {trips}\n.Louter:\n"));
    let nruns = 2 + rng.index(3);
    for run in 0..nruns {
        // One dense run: 3–8 `$sp`-relative accesses whose offsets
        // cluster inside a 56-byte window, so neighbours frequently
        // share a cache line and coalesce.
        let base_off = 4 * rng.index(6);
        for _ in 0..3 + rng.index(6) {
            let d = rng.index(8);
            let off = base_off + 4 * rng.index(10);
            if rng.chance(0.5) {
                s.push_str(&format!("\tlw $t{d}, {off}($sp)\n"));
            } else {
                s.push_str(&format!("\tsw $t{d}, {off}($sp)\n"));
            }
            if rng.chance(0.4) {
                let (a, b) = (rng.index(8), rng.index(8));
                match rng.index(3) {
                    0 => s.push_str(&format!("\taddiu $t{a}, $t{b}, {}\n", rng.range_i32(-8, 8))),
                    1 => s.push_str(&format!("\tsll $t{a}, $t{b}, {}\n", 1 + rng.index(3))),
                    _ => s.push_str(&format!("\taddu $t{a}, $t{a}, $t{b}\n")),
                }
            }
        }
        if run + 1 < nruns {
            match rng.index(3) {
                // A different base register between two runs: the
                // decoder cannot prove it misses the line.
                0 => s.push_str(&format!(
                    "\tlw $t{}, {}($gp)\n",
                    rng.index(8),
                    4 * rng.index(16)
                )),
                // A write to the group's base register itself.
                1 => s.push_str(
                    "\taddiu $sp, $sp, -16\n\tsw $t0, 0($sp)\n\tlw $t1, 0($sp)\n\taddiu $sp, $sp, 16\n",
                ),
                // An aliased copy of `$sp`: same line, different name.
                _ => s.push_str("\tmove $t2, $sp\n\tlw $t3, 4($t2)\n"),
            }
        }
    }
    s.push_str("\taddiu $s0, $s0, -1\n\tbgtz $s0, .Louter\n");
    s.push_str("\tli $v0, 10\n\tli $a0, 0\n\tsyscall\n");
    s
}

/// A random access-pattern kernel for the memory-matrix differential
/// sweeps: a strided scan or a pointer chase with randomized stride
/// and footprint, 50/50.
#[must_use]
pub fn arb_pattern_program(rng: &mut Rng) -> String {
    if rng.chance(0.5) {
        let stride = 4 * (1 + rng.index(24)) as u32;
        let trips = (64 + rng.index(448)) as u32;
        strided_scan_program(stride, trips)
    } else {
        let stride = 8 * (1 + rng.index(12)) as u32;
        let nodes = (8 + rng.index(56)) as u32;
        let trips = (2 + rng.index(6)) as u32;
        pointer_chase_program(stride, nodes, trips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        for _ in 0..20 {
            assert_eq!(arb_program(&mut a), arb_program(&mut b));
        }
    }

    #[test]
    fn call_programs_cover_all_required_shapes() {
        // Across a modest case budget the generator must produce
        // plain direct calls, calls inside loops, and 2-deep nesting
        // (a function that both is called and calls — it saves $ra).
        let (mut direct, mut in_loop, mut nested) = (false, false, false);
        cases(64, 0x9106, |rng| {
            let s = arb_call_program(rng);
            let jals = s.matches("jal f").count();
            assert!(jals >= 1, "every call program calls: {s}");
            if s.contains(".Lcall") {
                in_loop = true;
            } else {
                direct = true;
            }
            if s.contains("sw $ra") {
                nested = true;
            }
        });
        assert!(direct, "no plain direct call generated");
        assert!(in_loop, "no call-in-loop generated");
        assert!(nested, "no 2-deep call chain generated");
    }

    #[test]
    fn call_targets_are_defined_and_forward_only() {
        cases(64, 0x517e, |rng| {
            let s = arb_call_program(rng);
            let mut current = 0usize;
            for line in s.lines() {
                if let Some(name) = line.strip_suffix(':') {
                    if let Some(n) = name.strip_prefix('f') {
                        current = n.parse().expect("function label");
                    }
                }
                if let Some(callee) = line.trim().strip_prefix("jal f") {
                    let callee: usize = callee.parse().expect("callee index");
                    assert!(callee > current, "call must target a later function: {s}");
                }
            }
        });
    }

    #[test]
    fn strided_scan_rounds_stride_and_steps_it() {
        let s = strided_scan_program(6, 100);
        assert!(s.contains("addiu $t1, $t1, 8"), "stride rounds to 8: {s}");
        assert!(s.contains("li $t0, 100"));
        // Degenerate inputs stay executable.
        let s = strided_scan_program(0, 0);
        assert!(s.contains("addiu $t1, $t1, 4"));
        assert!(s.contains("li $t0, 1"));
    }

    #[test]
    fn pointer_chase_builds_then_walks() {
        let s = pointer_chase_program(16, 10, 3);
        let build = s.find(".Lbuild").expect("build loop");
        let walk = s.find(".Lwalk").expect("walk loop");
        assert!(build < walk, "chain built before walked");
        assert!(s.contains("lw $t1, 0($t1)"), "address chases a load: {s}");
    }

    #[test]
    fn pattern_programs_cover_both_shapes_deterministically() {
        let (mut scans, mut chases) = (false, false);
        let mut a = Rng::new(0x9a77);
        let mut b = Rng::new(0x9a77);
        for _ in 0..32 {
            let s = arb_pattern_program(&mut a);
            assert_eq!(s, arb_pattern_program(&mut b), "nondeterministic");
            if s.contains(".Lscan") {
                scans = true;
            }
            if s.contains(".Lhop") {
                chases = true;
            }
        }
        assert!(scans, "no strided scan generated");
        assert!(chases, "no pointer chase generated");
    }

    #[test]
    fn stack_heavy_programs_are_dense_and_bounded() {
        let (mut any_breaker, mut any_alias) = (false, false);
        let mut b = Rng::new(0x57AC);
        let mut a = Rng::new(0x57AC);
        for _ in 0..48 {
            let s = arb_stack_heavy_program(&mut a);
            assert_eq!(
                s,
                arb_stack_heavy_program(&mut b),
                "generation must be deterministic per seed"
            );
            // Every program must contain at least one dense run: three
            // consecutive `$sp`-relative accesses in a row (ignoring
            // interleaved ALU lines, which never break a group).
            let mut best = 0usize;
            let mut streak = 0usize;
            for line in s.lines() {
                let t = line.trim();
                if t.ends_with("($sp)") && (t.starts_with("lw") || t.starts_with("sw")) {
                    streak += 1;
                    best = best.max(streak);
                } else if t.starts_with("addiu $t")
                    || t.starts_with("sll $t")
                    || t.starts_with("addu $t")
                {
                    // ALU interleave: streak survives.
                } else {
                    streak = 0;
                }
            }
            assert!(best >= 3, "no dense sp-relative run: {s}");
            assert!(s.ends_with("\tsyscall\n"), "must exit cleanly: {s}");
            any_breaker |= s.contains("($gp)") || s.contains("addiu $sp, $sp, -16");
            any_alias |= s.contains("move $t2, $sp");
        }
        assert!(any_breaker, "no group-breaking access generated");
        assert!(any_alias, "no aliased-base access generated");
    }

    #[test]
    fn flow_programs_stay_call_free() {
        let mut any_loads = false;
        cases(32, 0xF10C, |rng| {
            let s = arb_flow_program(rng);
            assert!(!s.contains("jal"), "flow programs must not call: {s}");
            any_loads |= s.contains("lw ");
        });
        assert!(any_loads, "no flow program carried a load");
    }
}
