//! # dl-testkit
//!
//! A tiny, dependency-free property-testing substrate: a deterministic
//! xorshift64* PRNG (the same generator the simulator's `rand` syscall
//! uses), value generators, and a case-running loop that reports the
//! failing case's seed so any failure can be replayed exactly.
//!
//! The workspace's property tests originally used `proptest`; this
//! crate replaces it so the whole test suite builds and runs with no
//! network access and no external crates.
//!
//! # Example
//!
//! ```
//! use dl_testkit::{cases, Rng};
//!
//! cases(64, 0xd1_5ea5e, |rng| {
//!     let x = rng.range_i64(-100, 100);
//!     assert!((-100..100).contains(&x));
//! });
//! ```

#![warn(missing_docs)]

pub mod progen;

/// A deterministic xorshift64* generator.
///
/// The same recurrence as the simulator's `rand` syscall
/// (`crates/sim/src/cpu.rs`), so its statistical behaviour is already
/// trusted in-tree. Never use for anything but tests and controls.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (any value; 0 is remapped).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift reduction; bias is negligible for test bounds.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(i64::from(lo), i64::from(hi)) as i32
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range");
        lo + self.below(u64::from(hi - lo)) as u32
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.range_f64(0.0, 1.0) < p
    }

    /// Uniformly picks one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A vector of `len in [min_len, max_len)` elements drawn from
    /// `gen`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let len = min_len + self.index(max_len - min_len);
        (0..len).map(|_| gen(self)).collect()
    }
}

/// Runs `f` for `n` generated cases, each with a per-case seeded
/// generator. On panic the failing case's seed is printed so the case
/// can be replayed with `replay`.
pub fn cases(n: u64, seed: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..n {
        let case_seed = seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = Rng::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "dl-testkit: case {case}/{n} failed; replay with \
                 dl_testkit::replay({case_seed:#x}, ..)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-runs a single failing case by its reported seed.
pub fn replay(case_seed: u64, mut f: impl FnMut(&mut Rng)) {
    let mut rng = Rng::new(case_seed);
    f(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            assert!((-50..50).contains(&rng.range_i64(-50, 50)));
            assert!((10..20).contains(&rng.range_u32(10, 20)));
            let f = rng.range_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
            assert!(rng.index(3) < 3);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            let v = rng.vec_of(2, 10, Rng::next_u32);
            assert!((2..10).contains(&v.len()));
        }
    }

    #[test]
    fn cases_runs_exactly_n_times() {
        let mut count = 0;
        cases(17, 9, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn pick_only_returns_members() {
        let mut rng = Rng::new(5);
        let items = [1, 5, 9];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
