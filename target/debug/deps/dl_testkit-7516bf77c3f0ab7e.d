/root/repo/target/debug/deps/dl_testkit-7516bf77c3f0ab7e.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libdl_testkit-7516bf77c3f0ab7e.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libdl_testkit-7516bf77c3f0ab7e.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
