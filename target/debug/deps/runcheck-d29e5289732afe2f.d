/root/repo/target/debug/deps/runcheck-d29e5289732afe2f.d: crates/experiments/src/bin/runcheck.rs

/root/repo/target/debug/deps/runcheck-d29e5289732afe2f: crates/experiments/src/bin/runcheck.rs

crates/experiments/src/bin/runcheck.rs:
