/root/repo/target/debug/deps/dl_minic-14b791b4fa24e6df.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

/root/repo/target/debug/deps/dl_minic-14b791b4fa24e6df: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/gen.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/sema.rs:
