/root/repo/target/debug/deps/dl_mips-b34e0e569f434575.d: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

/root/repo/target/debug/deps/dl_mips-b34e0e569f434575: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

crates/mips/src/lib.rs:
crates/mips/src/asm.rs:
crates/mips/src/encode.rs:
crates/mips/src/inst.rs:
crates/mips/src/layout.rs:
crates/mips/src/parse.rs:
crates/mips/src/program.rs:
crates/mips/src/reg.rs:
