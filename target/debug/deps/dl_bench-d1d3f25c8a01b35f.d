/root/repo/target/debug/deps/dl_bench-d1d3f25c8a01b35f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdl_bench-d1d3f25c8a01b35f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdl_bench-d1d3f25c8a01b35f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
