/root/repo/target/debug/deps/end_to_end-d5d2ad02a4100670.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d5d2ad02a4100670: tests/end_to_end.rs

tests/end_to_end.rs:
