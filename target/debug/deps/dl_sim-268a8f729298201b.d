/root/repo/target/debug/deps/dl_sim-268a8f729298201b.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/dl_sim-268a8f729298201b: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/cpu.rs:
crates/sim/src/mem.rs:
crates/sim/src/stats.rs:
crates/sim/src/trace.rs:
