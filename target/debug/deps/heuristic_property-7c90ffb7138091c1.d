/root/repo/target/debug/deps/heuristic_property-7c90ffb7138091c1.d: crates/core/tests/heuristic_property.rs

/root/repo/target/debug/deps/heuristic_property-7c90ffb7138091c1: crates/core/tests/heuristic_property.rs

crates/core/tests/heuristic_property.rs:
