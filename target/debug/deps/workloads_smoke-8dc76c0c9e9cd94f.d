/root/repo/target/debug/deps/workloads_smoke-8dc76c0c9e9cd94f.d: tests/workloads_smoke.rs

/root/repo/target/debug/deps/workloads_smoke-8dc76c0c9e9cd94f: tests/workloads_smoke.rs

tests/workloads_smoke.rs:
