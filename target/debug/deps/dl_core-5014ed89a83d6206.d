/root/repo/target/debug/deps/dl_core-5014ed89a83d6206.d: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

/root/repo/target/debug/deps/dl_core-5014ed89a83d6206: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/classes.rs:
crates/core/src/combine.rs:
crates/core/src/heuristic.rs:
crates/core/src/training.rs:
