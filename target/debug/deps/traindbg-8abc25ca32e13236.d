/root/repo/target/debug/deps/traindbg-8abc25ca32e13236.d: crates/experiments/src/bin/traindbg.rs

/root/repo/target/debug/deps/traindbg-8abc25ca32e13236: crates/experiments/src/bin/traindbg.rs

crates/experiments/src/bin/traindbg.rs:
