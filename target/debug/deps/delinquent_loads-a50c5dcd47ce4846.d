/root/repo/target/debug/deps/delinquent_loads-a50c5dcd47ce4846.d: src/lib.rs

/root/repo/target/debug/deps/libdelinquent_loads-a50c5dcd47ce4846.rlib: src/lib.rs

/root/repo/target/debug/deps/libdelinquent_loads-a50c5dcd47ce4846.rmeta: src/lib.rs

src/lib.rs:
