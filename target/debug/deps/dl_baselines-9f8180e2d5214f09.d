/root/repo/target/debug/deps/dl_baselines-9f8180e2d5214f09.d: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

/root/repo/target/debug/deps/libdl_baselines-9f8180e2d5214f09.rlib: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

/root/repo/target/debug/deps/libdl_baselines-9f8180e2d5214f09.rmeta: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bdh.rs:
crates/baselines/src/okn.rs:
