/root/repo/target/debug/deps/bench-69ad2381d00d3a7c.d: crates/experiments/src/bin/bench.rs

/root/repo/target/debug/deps/bench-69ad2381d00d3a7c: crates/experiments/src/bin/bench.rs

crates/experiments/src/bin/bench.rs:
