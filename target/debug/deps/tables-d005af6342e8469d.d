/root/repo/target/debug/deps/tables-d005af6342e8469d.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-d005af6342e8469d: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
