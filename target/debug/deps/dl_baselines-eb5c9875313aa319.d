/root/repo/target/debug/deps/dl_baselines-eb5c9875313aa319.d: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

/root/repo/target/debug/deps/dl_baselines-eb5c9875313aa319: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bdh.rs:
crates/baselines/src/okn.rs:
