/root/repo/target/debug/deps/dl_experiments-3f0926f26c709f8b.d: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

/root/repo/target/debug/deps/libdl_experiments-3f0926f26c709f8b.rlib: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

/root/repo/target/debug/deps/libdl_experiments-3f0926f26c709f8b.rmeta: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

crates/experiments/src/lib.rs:
crates/experiments/src/document.rs:
crates/experiments/src/metrics.rs:
crates/experiments/src/pipeline.rs:
crates/experiments/src/report.rs:
crates/experiments/src/schedule.rs:
crates/experiments/src/tables.rs:
