/root/repo/target/debug/deps/dl_analysis-cc12cafd6710a759.d: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

/root/repo/target/debug/deps/libdl_analysis-cc12cafd6710a759.rlib: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

/root/repo/target/debug/deps/libdl_analysis-cc12cafd6710a759.rmeta: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

crates/analysis/src/lib.rs:
crates/analysis/src/cfg.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/extract.rs:
crates/analysis/src/freq.rs:
crates/analysis/src/pattern.rs:
crates/analysis/src/reaching.rs:
