/root/repo/target/debug/deps/parser_fuzz-d7bb0289f707e7fc.d: crates/minic/tests/parser_fuzz.rs

/root/repo/target/debug/deps/parser_fuzz-d7bb0289f707e7fc: crates/minic/tests/parser_fuzz.rs

crates/minic/tests/parser_fuzz.rs:
