/root/repo/target/debug/deps/repro-1d81194ebdb20ab3.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-1d81194ebdb20ab3: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
