/root/repo/target/debug/deps/delinquent_loads-53a76ea036ebd61f.d: src/lib.rs

/root/repo/target/debug/deps/delinquent_loads-53a76ea036ebd61f: src/lib.rs

src/lib.rs:
