/root/repo/target/debug/deps/dl_sim-e3f9154e2f763edd.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdl_sim-e3f9154e2f763edd.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libdl_sim-e3f9154e2f763edd.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/cpu.rs:
crates/sim/src/mem.rs:
crates/sim/src/stats.rs:
crates/sim/src/trace.rs:
