/root/repo/target/debug/deps/cache_property-a3b2adcfc125b974.d: crates/sim/tests/cache_property.rs

/root/repo/target/debug/deps/cache_property-a3b2adcfc125b974: crates/sim/tests/cache_property.rs

crates/sim/tests/cache_property.rs:
