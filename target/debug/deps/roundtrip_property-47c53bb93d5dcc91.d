/root/repo/target/debug/deps/roundtrip_property-47c53bb93d5dcc91.d: crates/mips/tests/roundtrip_property.rs

/root/repo/target/debug/deps/roundtrip_property-47c53bb93d5dcc91: crates/mips/tests/roundtrip_property.rs

crates/mips/tests/roundtrip_property.rs:
