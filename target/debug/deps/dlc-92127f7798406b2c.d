/root/repo/target/debug/deps/dlc-92127f7798406b2c.d: src/bin/dlc.rs

/root/repo/target/debug/deps/dlc-92127f7798406b2c: src/bin/dlc.rs

src/bin/dlc.rs:
