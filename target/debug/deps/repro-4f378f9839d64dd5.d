/root/repo/target/debug/deps/repro-4f378f9839d64dd5.d: crates/experiments/src/bin/repro.rs

/root/repo/target/debug/deps/repro-4f378f9839d64dd5: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
