/root/repo/target/debug/deps/dl_bench-bbecd0641a1d1ad6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dl_bench-bbecd0641a1d1ad6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
