/root/repo/target/debug/deps/concurrency-13ced7d2728dfb2e.d: crates/experiments/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-13ced7d2728dfb2e: crates/experiments/tests/concurrency.rs

crates/experiments/tests/concurrency.rs:
