/root/repo/target/debug/deps/runcheck-07c31a584d03d5ac.d: crates/experiments/src/bin/runcheck.rs

/root/repo/target/debug/deps/runcheck-07c31a584d03d5ac: crates/experiments/src/bin/runcheck.rs

crates/experiments/src/bin/runcheck.rs:
