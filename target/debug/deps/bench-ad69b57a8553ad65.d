/root/repo/target/debug/deps/bench-ad69b57a8553ad65.d: crates/experiments/src/bin/bench.rs

/root/repo/target/debug/deps/bench-ad69b57a8553ad65: crates/experiments/src/bin/bench.rs

crates/experiments/src/bin/bench.rs:
