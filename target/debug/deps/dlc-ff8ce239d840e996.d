/root/repo/target/debug/deps/dlc-ff8ce239d840e996.d: src/bin/dlc.rs

/root/repo/target/debug/deps/dlc-ff8ce239d840e996: src/bin/dlc.rs

src/bin/dlc.rs:
