/root/repo/target/debug/deps/dl_testkit-2df5b635c600bef0.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/dl_testkit-2df5b635c600bef0: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
