/root/repo/target/debug/deps/dl_core-7cf2a74263fc1835.d: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libdl_core-7cf2a74263fc1835.rlib: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

/root/repo/target/debug/deps/libdl_core-7cf2a74263fc1835.rmeta: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/classes.rs:
crates/core/src/combine.rs:
crates/core/src/heuristic.rs:
crates/core/src/training.rs:
