/root/repo/target/debug/deps/dl_analysis-ee212bbcf089698c.d: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

/root/repo/target/debug/deps/dl_analysis-ee212bbcf089698c: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

crates/analysis/src/lib.rs:
crates/analysis/src/cfg.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/extract.rs:
crates/analysis/src/freq.rs:
crates/analysis/src/pattern.rs:
crates/analysis/src/reaching.rs:
