/root/repo/target/debug/deps/dl_mips-607b50d472bf0d11.d: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

/root/repo/target/debug/deps/libdl_mips-607b50d472bf0d11.rlib: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

/root/repo/target/debug/deps/libdl_mips-607b50d472bf0d11.rmeta: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

crates/mips/src/lib.rs:
crates/mips/src/asm.rs:
crates/mips/src/encode.rs:
crates/mips/src/inst.rs:
crates/mips/src/layout.rs:
crates/mips/src/parse.rs:
crates/mips/src/program.rs:
crates/mips/src/reg.rs:
