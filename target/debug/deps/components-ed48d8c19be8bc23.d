/root/repo/target/debug/deps/components-ed48d8c19be8bc23.d: crates/bench/src/bin/components.rs

/root/repo/target/debug/deps/components-ed48d8c19be8bc23: crates/bench/src/bin/components.rs

crates/bench/src/bin/components.rs:
