/root/repo/target/debug/deps/dl_experiments-29ea0fb76cc87ab6.d: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

/root/repo/target/debug/deps/dl_experiments-29ea0fb76cc87ab6: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

crates/experiments/src/lib.rs:
crates/experiments/src/document.rs:
crates/experiments/src/metrics.rs:
crates/experiments/src/pipeline.rs:
crates/experiments/src/report.rs:
crates/experiments/src/schedule.rs:
crates/experiments/src/tables.rs:
