/root/repo/target/debug/deps/dl_minic-4dd3a0dd76baee9e.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

/root/repo/target/debug/deps/libdl_minic-4dd3a0dd76baee9e.rlib: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

/root/repo/target/debug/deps/libdl_minic-4dd3a0dd76baee9e.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/gen.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/sema.rs:
