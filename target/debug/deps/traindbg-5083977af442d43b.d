/root/repo/target/debug/deps/traindbg-5083977af442d43b.d: crates/experiments/src/bin/traindbg.rs

/root/repo/target/debug/deps/traindbg-5083977af442d43b: crates/experiments/src/bin/traindbg.rs

crates/experiments/src/bin/traindbg.rs:
