/root/repo/target/debug/deps/exec-b52fff1ed7344b77.d: crates/minic/tests/exec.rs

/root/repo/target/debug/deps/exec-b52fff1ed7344b77: crates/minic/tests/exec.rs

crates/minic/tests/exec.rs:
