/root/repo/target/debug/deps/pattern_property-b4422235c1629320.d: crates/analysis/tests/pattern_property.rs

/root/repo/target/debug/deps/pattern_property-b4422235c1629320: crates/analysis/tests/pattern_property.rs

crates/analysis/tests/pattern_property.rs:
