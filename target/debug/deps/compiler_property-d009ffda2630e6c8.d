/root/repo/target/debug/deps/compiler_property-d009ffda2630e6c8.d: tests/compiler_property.rs

/root/repo/target/debug/deps/compiler_property-d009ffda2630e6c8: tests/compiler_property.rs

tests/compiler_property.rs:
