/root/repo/target/debug/deps/reaching_property-8657535ca500cd28.d: crates/analysis/tests/reaching_property.rs

/root/repo/target/debug/deps/reaching_property-8657535ca500cd28: crates/analysis/tests/reaching_property.rs

crates/analysis/tests/reaching_property.rs:
