/root/repo/target/debug/examples/prefetch_guidance-030fdb76d23be7f7.d: examples/prefetch_guidance.rs

/root/repo/target/debug/examples/prefetch_guidance-030fdb76d23be7f7: examples/prefetch_guidance.rs

examples/prefetch_guidance.rs:
