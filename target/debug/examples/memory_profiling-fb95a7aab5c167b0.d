/root/repo/target/debug/examples/memory_profiling-fb95a7aab5c167b0.d: examples/memory_profiling.rs

/root/repo/target/debug/examples/memory_profiling-fb95a7aab5c167b0: examples/memory_profiling.rs

examples/memory_profiling.rs:
