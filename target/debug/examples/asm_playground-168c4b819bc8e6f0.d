/root/repo/target/debug/examples/asm_playground-168c4b819bc8e6f0.d: examples/asm_playground.rs

/root/repo/target/debug/examples/asm_playground-168c4b819bc8e6f0: examples/asm_playground.rs

examples/asm_playground.rs:
