/root/repo/target/debug/examples/benchmark_deep_dive-6a1b025a4cb3b540.d: examples/benchmark_deep_dive.rs

/root/repo/target/debug/examples/benchmark_deep_dive-6a1b025a4cb3b540: examples/benchmark_deep_dive.rs

examples/benchmark_deep_dive.rs:
