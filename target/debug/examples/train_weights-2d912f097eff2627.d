/root/repo/target/debug/examples/train_weights-2d912f097eff2627.d: examples/train_weights.rs

/root/repo/target/debug/examples/train_weights-2d912f097eff2627: examples/train_weights.rs

examples/train_weights.rs:
