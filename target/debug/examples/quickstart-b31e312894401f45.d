/root/repo/target/debug/examples/quickstart-b31e312894401f45.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b31e312894401f45: examples/quickstart.rs

examples/quickstart.rs:
