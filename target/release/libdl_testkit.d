/root/repo/target/release/libdl_testkit.rlib: /root/repo/crates/testkit/src/lib.rs
