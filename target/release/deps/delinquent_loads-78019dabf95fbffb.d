/root/repo/target/release/deps/delinquent_loads-78019dabf95fbffb.d: src/lib.rs

/root/repo/target/release/deps/libdelinquent_loads-78019dabf95fbffb.rlib: src/lib.rs

/root/repo/target/release/deps/libdelinquent_loads-78019dabf95fbffb.rmeta: src/lib.rs

src/lib.rs:
