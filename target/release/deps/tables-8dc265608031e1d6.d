/root/repo/target/release/deps/tables-8dc265608031e1d6.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-8dc265608031e1d6: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
