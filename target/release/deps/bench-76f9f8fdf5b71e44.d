/root/repo/target/release/deps/bench-76f9f8fdf5b71e44.d: crates/experiments/src/bin/bench.rs

/root/repo/target/release/deps/bench-76f9f8fdf5b71e44: crates/experiments/src/bin/bench.rs

crates/experiments/src/bin/bench.rs:
