/root/repo/target/release/deps/dl_analysis-9f761527222a6d3f.d: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

/root/repo/target/release/deps/libdl_analysis-9f761527222a6d3f.rlib: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

/root/repo/target/release/deps/libdl_analysis-9f761527222a6d3f.rmeta: crates/analysis/src/lib.rs crates/analysis/src/cfg.rs crates/analysis/src/dom.rs crates/analysis/src/extract.rs crates/analysis/src/freq.rs crates/analysis/src/pattern.rs crates/analysis/src/reaching.rs

crates/analysis/src/lib.rs:
crates/analysis/src/cfg.rs:
crates/analysis/src/dom.rs:
crates/analysis/src/extract.rs:
crates/analysis/src/freq.rs:
crates/analysis/src/pattern.rs:
crates/analysis/src/reaching.rs:
