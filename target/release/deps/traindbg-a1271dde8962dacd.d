/root/repo/target/release/deps/traindbg-a1271dde8962dacd.d: crates/experiments/src/bin/traindbg.rs

/root/repo/target/release/deps/traindbg-a1271dde8962dacd: crates/experiments/src/bin/traindbg.rs

crates/experiments/src/bin/traindbg.rs:
