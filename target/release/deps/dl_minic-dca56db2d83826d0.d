/root/repo/target/release/deps/dl_minic-dca56db2d83826d0.d: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

/root/repo/target/release/deps/libdl_minic-dca56db2d83826d0.rlib: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

/root/repo/target/release/deps/libdl_minic-dca56db2d83826d0.rmeta: crates/minic/src/lib.rs crates/minic/src/ast.rs crates/minic/src/gen.rs crates/minic/src/lexer.rs crates/minic/src/parser.rs crates/minic/src/sema.rs

crates/minic/src/lib.rs:
crates/minic/src/ast.rs:
crates/minic/src/gen.rs:
crates/minic/src/lexer.rs:
crates/minic/src/parser.rs:
crates/minic/src/sema.rs:
