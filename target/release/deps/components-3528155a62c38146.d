/root/repo/target/release/deps/components-3528155a62c38146.d: crates/bench/src/bin/components.rs

/root/repo/target/release/deps/components-3528155a62c38146: crates/bench/src/bin/components.rs

crates/bench/src/bin/components.rs:
