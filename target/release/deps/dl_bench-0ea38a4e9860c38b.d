/root/repo/target/release/deps/dl_bench-0ea38a4e9860c38b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdl_bench-0ea38a4e9860c38b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdl_bench-0ea38a4e9860c38b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
