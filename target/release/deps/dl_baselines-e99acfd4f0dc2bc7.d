/root/repo/target/release/deps/dl_baselines-e99acfd4f0dc2bc7.d: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

/root/repo/target/release/deps/libdl_baselines-e99acfd4f0dc2bc7.rlib: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

/root/repo/target/release/deps/libdl_baselines-e99acfd4f0dc2bc7.rmeta: crates/baselines/src/lib.rs crates/baselines/src/bdh.rs crates/baselines/src/okn.rs

crates/baselines/src/lib.rs:
crates/baselines/src/bdh.rs:
crates/baselines/src/okn.rs:
