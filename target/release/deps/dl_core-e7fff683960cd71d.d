/root/repo/target/release/deps/dl_core-e7fff683960cd71d.d: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

/root/repo/target/release/deps/libdl_core-e7fff683960cd71d.rlib: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

/root/repo/target/release/deps/libdl_core-e7fff683960cd71d.rmeta: crates/core/src/lib.rs crates/core/src/classes.rs crates/core/src/combine.rs crates/core/src/heuristic.rs crates/core/src/training.rs

crates/core/src/lib.rs:
crates/core/src/classes.rs:
crates/core/src/combine.rs:
crates/core/src/heuristic.rs:
crates/core/src/training.rs:
