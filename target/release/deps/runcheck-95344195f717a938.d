/root/repo/target/release/deps/runcheck-95344195f717a938.d: crates/experiments/src/bin/runcheck.rs

/root/repo/target/release/deps/runcheck-95344195f717a938: crates/experiments/src/bin/runcheck.rs

crates/experiments/src/bin/runcheck.rs:
