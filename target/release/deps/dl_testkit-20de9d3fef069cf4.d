/root/repo/target/release/deps/dl_testkit-20de9d3fef069cf4.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libdl_testkit-20de9d3fef069cf4.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libdl_testkit-20de9d3fef069cf4.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
