/root/repo/target/release/deps/dl_mips-fdf8af7926a4cd3a.d: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

/root/repo/target/release/deps/libdl_mips-fdf8af7926a4cd3a.rlib: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

/root/repo/target/release/deps/libdl_mips-fdf8af7926a4cd3a.rmeta: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/encode.rs crates/mips/src/inst.rs crates/mips/src/layout.rs crates/mips/src/parse.rs crates/mips/src/program.rs crates/mips/src/reg.rs

crates/mips/src/lib.rs:
crates/mips/src/asm.rs:
crates/mips/src/encode.rs:
crates/mips/src/inst.rs:
crates/mips/src/layout.rs:
crates/mips/src/parse.rs:
crates/mips/src/program.rs:
crates/mips/src/reg.rs:
