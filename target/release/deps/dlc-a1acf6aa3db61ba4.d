/root/repo/target/release/deps/dlc-a1acf6aa3db61ba4.d: src/bin/dlc.rs

/root/repo/target/release/deps/dlc-a1acf6aa3db61ba4: src/bin/dlc.rs

src/bin/dlc.rs:
