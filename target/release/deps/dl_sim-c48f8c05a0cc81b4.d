/root/repo/target/release/deps/dl_sim-c48f8c05a0cc81b4.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdl_sim-c48f8c05a0cc81b4.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libdl_sim-c48f8c05a0cc81b4.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cpu.rs crates/sim/src/mem.rs crates/sim/src/stats.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/cpu.rs:
crates/sim/src/mem.rs:
crates/sim/src/stats.rs:
crates/sim/src/trace.rs:
