/root/repo/target/release/deps/dl_experiments-67171ae29a746bbe.d: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

/root/repo/target/release/deps/libdl_experiments-67171ae29a746bbe.rlib: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

/root/repo/target/release/deps/libdl_experiments-67171ae29a746bbe.rmeta: crates/experiments/src/lib.rs crates/experiments/src/document.rs crates/experiments/src/metrics.rs crates/experiments/src/pipeline.rs crates/experiments/src/report.rs crates/experiments/src/schedule.rs crates/experiments/src/tables.rs

crates/experiments/src/lib.rs:
crates/experiments/src/document.rs:
crates/experiments/src/metrics.rs:
crates/experiments/src/pipeline.rs:
crates/experiments/src/report.rs:
crates/experiments/src/schedule.rs:
crates/experiments/src/tables.rs:
