/root/repo/target/release/deps/repro-ae8c2abb8f411c35.d: crates/experiments/src/bin/repro.rs

/root/repo/target/release/deps/repro-ae8c2abb8f411c35: crates/experiments/src/bin/repro.rs

crates/experiments/src/bin/repro.rs:
