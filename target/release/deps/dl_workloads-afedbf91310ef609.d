/root/repo/target/release/deps/dl_workloads-afedbf91310ef609.d: crates/workloads/src/lib.rs crates/workloads/src/../programs/_coldlib.mc crates/workloads/src/../programs/espresso.mc crates/workloads/src/../programs/li.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/go.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/m88ksim.mc crates/workloads/src/../programs/gcc.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/ijpeg.mc crates/workloads/src/../programs/vortex.mc crates/workloads/src/../programs/gzip.mc crates/workloads/src/../programs/vpr.mc crates/workloads/src/../programs/art.mc crates/workloads/src/../programs/mcf.mc crates/workloads/src/../programs/equake.mc crates/workloads/src/../programs/ammp.mc crates/workloads/src/../programs/parser.mc crates/workloads/src/../programs/twolf.mc

/root/repo/target/release/deps/libdl_workloads-afedbf91310ef609.rlib: crates/workloads/src/lib.rs crates/workloads/src/../programs/_coldlib.mc crates/workloads/src/../programs/espresso.mc crates/workloads/src/../programs/li.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/go.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/m88ksim.mc crates/workloads/src/../programs/gcc.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/ijpeg.mc crates/workloads/src/../programs/vortex.mc crates/workloads/src/../programs/gzip.mc crates/workloads/src/../programs/vpr.mc crates/workloads/src/../programs/art.mc crates/workloads/src/../programs/mcf.mc crates/workloads/src/../programs/equake.mc crates/workloads/src/../programs/ammp.mc crates/workloads/src/../programs/parser.mc crates/workloads/src/../programs/twolf.mc

/root/repo/target/release/deps/libdl_workloads-afedbf91310ef609.rmeta: crates/workloads/src/lib.rs crates/workloads/src/../programs/_coldlib.mc crates/workloads/src/../programs/espresso.mc crates/workloads/src/../programs/li.mc crates/workloads/src/../programs/sc.mc crates/workloads/src/../programs/go.mc crates/workloads/src/../programs/tomcatv.mc crates/workloads/src/../programs/m88ksim.mc crates/workloads/src/../programs/gcc.mc crates/workloads/src/../programs/compress.mc crates/workloads/src/../programs/ijpeg.mc crates/workloads/src/../programs/vortex.mc crates/workloads/src/../programs/gzip.mc crates/workloads/src/../programs/vpr.mc crates/workloads/src/../programs/art.mc crates/workloads/src/../programs/mcf.mc crates/workloads/src/../programs/equake.mc crates/workloads/src/../programs/ammp.mc crates/workloads/src/../programs/parser.mc crates/workloads/src/../programs/twolf.mc

crates/workloads/src/lib.rs:
crates/workloads/src/../programs/_coldlib.mc:
crates/workloads/src/../programs/espresso.mc:
crates/workloads/src/../programs/li.mc:
crates/workloads/src/../programs/sc.mc:
crates/workloads/src/../programs/go.mc:
crates/workloads/src/../programs/tomcatv.mc:
crates/workloads/src/../programs/m88ksim.mc:
crates/workloads/src/../programs/gcc.mc:
crates/workloads/src/../programs/compress.mc:
crates/workloads/src/../programs/ijpeg.mc:
crates/workloads/src/../programs/vortex.mc:
crates/workloads/src/../programs/gzip.mc:
crates/workloads/src/../programs/vpr.mc:
crates/workloads/src/../programs/art.mc:
crates/workloads/src/../programs/mcf.mc:
crates/workloads/src/../programs/equake.mc:
crates/workloads/src/../programs/ammp.mc:
crates/workloads/src/../programs/parser.mc:
crates/workloads/src/../programs/twolf.mc:
