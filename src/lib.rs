//! # delinquent-loads
//!
//! A full reproduction of **"Static Identification of Delinquent
//! Loads"** (Panait, Sasturkar & Wong, CGO 2004): a post-compilation
//! static heuristic that flags the ~10% of load instructions
//! responsible for ~90% of L1 data-cache misses, plus the entire
//! substrate needed to evaluate it — a small C-like compiler, a
//! MIPS-like ISA, a cache simulator, 18 synthetic SPEC-like workloads,
//! the OKN and BDH comparison methods, and a harness regenerating
//! every table in the paper.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`mips`] | `dl-mips` | instruction set, programs, assembly text |
//! | [`minic`] | `dl-minic` | the MiniC language and compiler (O0/O1) |
//! | [`sim`] | `dl-sim` | CPU interpreter + L1 D-cache model |
//! | [`analysis`] | `dl-analysis` | CFG, reaching defs, address patterns |
//! | [`heuristic`] | `dl-core` | the paper's classifier (AG1–AG9, φ, δ) |
//! | [`baselines`] | `dl-baselines` | OKN and BDH comparison methods |
//! | [`workloads`] | `dl-workloads` | 18 synthetic SPEC-like benchmarks |
//! | [`experiments`] | `dl-experiments` | metrics (π, ρ, ξ) and table harness |
//!
//! # Quickstart
//!
//! ```
//! use delinquent_loads::prelude::*;
//!
//! // A pointer-chasing kernel: the chase load should be flagged.
//! let source = r#"
//!     struct node { int value; struct node* next; };
//!     int main() {
//!         struct node* head; struct node* p; int i; int sum;
//!         head = 0;
//!         for (i = 0; i < 2000; i = i + 1) {
//!             p = malloc(sizeof(struct node));
//!             p->value = i;
//!             p->next = head;
//!             head = p;
//!         }
//!         sum = 0;
//!         for (p = head; p != 0; p = p->next) { sum = sum + p->value; }
//!         print(sum);
//!         return 0;
//!     }
//! "#;
//! let program = compile(source, OptLevel::O0)?;
//! let result = run(&program, &RunConfig::default()).unwrap();
//! // The pass manager computes each analysis lazily, once; every
//! // Predictor (heuristic, OKN, BDH, reuse, hybrids) reads through it.
//! let ctx = AnalysisCtx::new(program).with_profile(&result.exec_counts);
//! let delinquent = Heuristic::default().predict(&ctx);
//! assert!(!delinquent.is_empty());
//! # Ok::<(), delinquent_loads::minic::CompileError>(())
//! ```

#![warn(missing_docs)]

pub use dl_analysis as analysis;
pub use dl_baselines as baselines;
pub use dl_core as heuristic;
pub use dl_experiments as experiments;
pub use dl_minic as minic;
pub use dl_mips as mips;
pub use dl_sim as sim;
pub use dl_workloads as workloads;

/// The most common imports for end-to-end use.
pub mod prelude {
    pub use dl_analysis::extract::{analyze_program, AnalysisConfig, ProgramAnalysis};
    pub use dl_analysis::AnalysisCtx;
    pub use dl_baselines::{
        bdh_delinquent_set, okn_delinquent_set, Bdh, Okn, ProfilePredictor, ReusePredictor,
    };
    pub use dl_core::combine::combine_with_profiling;
    pub use dl_core::{AgClass, Heuristic, Hybrid, Predictor, Weights};
    pub use dl_experiments::metrics::{ideal_set, pi, profiling_set, rho};
    pub use dl_experiments::pipeline::Pipeline;
    pub use dl_minic::{compile, OptLevel};
    pub use dl_mips::program::Program;
    pub use dl_sim::{run, CacheConfig, RunConfig, RunResult};
}
