//! `dlc` — the delinquent-loads compiler driver.
//!
//! A small command-line front end over the whole pipeline:
//!
//! ```text
//! dlc build  prog.mc [-O1] [--emit asm|bin|words]   # compile, print assembly or binary
//! dlc run    prog.mc [-O1] [--input 1,2,3]          # compile and simulate
//! dlc analyze prog.mc [-O1] [--input 1,2,3] [--delta 0.1]
//!                                                   # flag possibly-delinquent loads
//! dlc top    prog.mc [--epoch N] [--limit K]        # miss observatory: rank load sites
//! dlc bench-diff old.json new.json [--threshold PCT] [--cost-threshold PCT]
//!                                                   # perf-regression gate over bench JSON
//! ```
//!
//! `--engine step|block` (on `run` and `analyze`) selects the
//! simulator core: the reference per-instruction interpreter or the
//! block-cached engine (the default). The two are observationally
//! identical; `step` exists for differential debugging. The
//! `DL_SIM_ENGINE` environment variable sets the default when the
//! flag is absent.
//!
//! `--policy lru|plru|random`, `--l2 KB[,ASSOC][,incl|excl]` (or
//! `none`), and `--prefetch DEGREE` (on `run`, `analyze`, and `top`)
//! select the memory system: L1 replacement policy, an optional
//! second cache level, and a PC-indexed stride prefetcher (degree 0
//! disables it). The `DL_POLICY` / `DL_L2` / `DL_PREFETCH`
//! environment variables set the defaults when the flags are absent.
//! All default to the paper's single LRU L1.
//!
//! `--profile` (on `run` and `analyze`) turns on the simulator's
//! opt-in cache profiling: the miss-class breakdown (compulsory /
//! capacity / conflict, paper §3) and the hottest cache sets are
//! printed on stderr. Profiling never changes hit/miss counts, so
//! stdout is byte-identical with and without it.
//!
//! `analyze` runs the full paper pipeline: compile → simulate (for the
//! frequency classes and ground-truth misses) → address patterns →
//! heuristic, then prints each flagged load with its φ score, pattern,
//! and measured misses.
//!
//! `--reuse` (on `analyze`) additionally prints the static loop-nest
//! and reuse-distance report: every detected loop with its estimated
//! trip count, every in-loop load's address class and predicted miss
//! ratio next to the measured one, and the reuse and hybrid
//! delinquent sets scored with the same π/ρ metrics.
//!
//! `--trace-out PATH` (on `run`, `analyze`, and `top`) writes a Chrome
//! trace-event JSON timeline (loadable in Perfetto /
//! `chrome://tracing`) with compile, per-analysis-pass, and simulation
//! spans.
//!
//! `top` runs the simulator with the per-load-site miss observatory on:
//! misses are windowed into epochs of `--epoch` observed loads
//! (default 2^20) and the hottest `--limit` sites are ranked by total
//! misses, with each static predictor's verdict and the site's phase
//! behavior over epochs alongside.
//!
//! `bench-diff` is the perf-regression gate: it compares the
//! higher-is-better throughput metrics of two `bench --json` outputs
//! and fails if any dropped by more than `--threshold` percent, or
//! any lower-is-better `sim_probe_*_ns` cost rose by more than
//! `--cost-threshold` percent (default: twice the main threshold).

use std::process::ExitCode;
use std::sync::Arc;

use delinquent_loads::heuristic::combine::{combine_hybrid, HybridMode};
use delinquent_loads::heuristic::{Heuristic, Predictor};
use delinquent_loads::minic::{compile, OptLevel};
use delinquent_loads::mips::encode::encode_program;
use dl_analysis::{AnalysisCtx, CacheGeometry};
use dl_baselines::{Bdh, Okn, ProfilePredictor, ReusePredictor};
use dl_experiments::metrics::{pi, rho};
use dl_experiments::obs::SpanPassObserver;
use dl_obs::{chrome_trace, Json, Spans};
use dl_sim::{
    run, run_full, Engine, L2Config, MemoryConfig, ObserveConfig, RunConfig, RunResult,
    StridePrefetchConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dlc: {message}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    path: String,
    opt: OptLevel,
    input: Vec<i32>,
    emit: String,
    delta: f64,
    profile: bool,
    reuse: bool,
    engine: Option<Engine>,
    memory: MemoryConfig,
    trace_out: Option<String>,
    epoch: u64,
    limit: usize,
}

/// The memory-system defaults from `DL_POLICY` / `DL_L2` /
/// `DL_PREFETCH`; the corresponding flags override them.
fn memory_from_env() -> Result<MemoryConfig, String> {
    let mut memory = MemoryConfig::default();
    if let Ok(v) = std::env::var("DL_POLICY") {
        memory.policy = v.parse().map_err(|e| format!("DL_POLICY: {e}"))?;
    }
    if let Ok(v) = std::env::var("DL_L2") {
        if !v.is_empty() && v != "none" {
            memory.l2 = Some(v.parse::<L2Config>().map_err(|e| format!("DL_L2: {e}"))?);
        }
    }
    if let Ok(v) = std::env::var("DL_PREFETCH") {
        let degree: u32 = v.parse().map_err(|e| format!("DL_PREFETCH: {e}"))?;
        memory.prefetch = (degree > 0).then(|| StridePrefetchConfig::degree(degree));
    }
    Ok(memory)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        path: String::new(),
        opt: OptLevel::O0,
        input: Vec::new(),
        emit: "asm".to_owned(),
        delta: 0.10,
        profile: false,
        reuse: false,
        engine: None,
        memory: memory_from_env()?,
        trace_out: None,
        epoch: dl_sim::ObserveConfig::default().epoch_len,
        limit: 10,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-O0" => options.opt = OptLevel::O0,
            "-O1" | "-O" => options.opt = OptLevel::O1,
            "--emit" => {
                options.emit = it.next().ok_or("--emit requires asm|bin|words")?.clone();
            }
            "--input" => {
                let list = it.next().ok_or("--input requires a comma list")?;
                options.input = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<i32>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--delta" => {
                options.delta = it
                    .next()
                    .ok_or("--delta requires a number")?
                    .parse::<f64>()
                    .map_err(|e| e.to_string())?;
            }
            "--profile" => options.profile = true,
            "--reuse" => options.reuse = true,
            "--engine" => {
                options.engine = Some(
                    it.next()
                        .ok_or("--engine requires step|block")?
                        .parse::<Engine>()?,
                );
            }
            "--policy" => {
                options.memory.policy = it
                    .next()
                    .ok_or("--policy requires lru|plru|random")?
                    .parse()?;
            }
            "--l2" => {
                let v = it
                    .next()
                    .ok_or("--l2 requires KB[,ASSOC][,incl|excl] or none")?;
                options.memory.l2 = if v == "none" {
                    None
                } else {
                    Some(v.parse::<L2Config>()?)
                };
            }
            "--prefetch" => {
                let degree = it
                    .next()
                    .ok_or("--prefetch requires a degree (0 disables)")?
                    .parse::<u32>()
                    .map_err(|e| e.to_string())?;
                options.memory.prefetch =
                    (degree > 0).then(|| StridePrefetchConfig::degree(degree));
            }
            "--trace-out" => {
                options.trace_out = Some(it.next().ok_or("--trace-out requires a path")?.clone());
            }
            "--epoch" => {
                options.epoch = it
                    .next()
                    .ok_or("--epoch requires a load count")?
                    .parse::<u64>()
                    .map_err(|e| e.to_string())?;
                if options.epoch == 0 {
                    return Err("--epoch must be positive".into());
                }
            }
            "--limit" => {
                options.limit = it
                    .next()
                    .ok_or("--limit requires a site count")?
                    .parse::<usize>()
                    .map_err(|e| e.to_string())?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => {
                if !options.path.is_empty() {
                    return Err("multiple input files given".into());
                }
                options.path = path.to_owned();
            }
        }
    }
    if options.path.is_empty() {
        return Err("no input file".into());
    }
    Ok(options)
}

fn load_program(options: &Options) -> Result<dl_mips::program::Program, String> {
    let source =
        std::fs::read_to_string(&options.path).map_err(|e| format!("{}: {e}", options.path))?;
    compile(&source, options.opt).map_err(|e| format!("{}: {e}", options.path))
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(
            "usage: dlc <build|run|analyze|top> prog.mc [-O1] [--emit asm|bin|words] \
             [--input 1,2,3] [--delta 0.1] [--profile] [--reuse] [--engine step|block] \
             [--policy lru|plru|random] [--l2 KB[,ASSOC][,incl|excl]|none] [--prefetch N] \
             [--trace-out t.json] [--epoch N] [--limit K]\n       \
             dlc bench-diff old.json new.json [--threshold PCT] [--cost-threshold PCT]"
                .into(),
        );
    };
    if command == "bench-diff" {
        return bench_diff(rest);
    }
    let options = parse_options(rest)?;
    match command.as_str() {
        "build" => {
            let program = load_program(&options)?;
            match options.emit.as_str() {
                "asm" => print!("{}", program.to_asm()),
                "words" => {
                    let words = encode_program(&program).map_err(|e| e.to_string())?;
                    for (i, w) in words.iter().enumerate() {
                        println!("{:#010x}: {w:#010x}  {}", program.pc(i), program.insts[i]);
                    }
                }
                "bin" => {
                    use std::io::Write;
                    let words = encode_program(&program).map_err(|e| e.to_string())?;
                    let mut out = std::io::stdout().lock();
                    for w in words {
                        out.write_all(&w.to_le_bytes()).map_err(|e| e.to_string())?;
                    }
                }
                other => return Err(format!("unknown emit kind `{other}`")),
            }
            Ok(())
        }
        "run" => {
            let spans = Arc::new(Spans::default());
            let program = spans.time(&format!("compile/{}", options.path), || {
                load_program(&options)
            })?;
            let config = RunConfig {
                input: options.input.clone(),
                classify_misses: options.profile,
                // Precedence: --engine beats DL_SIM_ENGINE beats the default.
                engine: options.engine.unwrap_or_else(Engine::from_env),
                memory: options.memory,
                ..RunConfig::default()
            };
            let start = std::time::Instant::now();
            let result = run(&program, &config).map_err(|e| e.to_string())?;
            let secs = start.elapsed().as_secs_f64();
            spans.record_at(&format!("sim/{}", options.path), start, secs);
            for v in &result.output {
                println!("{v}");
            }
            eprintln!(
                "[{} instructions, {} loads, {} load misses, exit {}, {:.0}M insts/s]",
                result.instructions,
                result.loads,
                result.load_misses_total,
                result.exit_code,
                result.instructions as f64 / secs.max(1e-9) / 1e6
            );
            print_memory(&config, &result);
            print_profile(&result);
            write_trace(&options, &spans)
        }
        "top" => top(&options),
        "analyze" => {
            let spans = Arc::new(Spans::default());
            let program = spans.time(&format!("compile/{}", options.path), || {
                load_program(&options)
            })?;
            let config = RunConfig {
                input: options.input.clone(),
                classify_misses: options.profile,
                engine: options.engine.unwrap_or_else(Engine::from_env),
                memory: options.memory,
                ..RunConfig::default()
            };
            let start = std::time::Instant::now();
            let result = run(&program, &config).map_err(|e| e.to_string())?;
            spans.record_at(
                &format!("sim/{}", options.path),
                start,
                start.elapsed().as_secs_f64(),
            );
            // One pass manager feeds the heuristic and the --reuse
            // report: patterns, loops, and load classes are each
            // computed at most once however many predictors run.
            let ctx = AnalysisCtx::new(program).with_profile(&result.exec_counts);
            if options.trace_out.is_some() {
                ctx.set_pass_observer(Arc::new(SpanPassObserver::new(
                    Arc::clone(&spans),
                    format!("analysis/{}", options.path),
                )));
            }
            let analysis = ctx.analysis();
            let heuristic = Heuristic::default().with_threshold(options.delta);
            let delinquent = heuristic.predict(&ctx);
            println!(
                "Λ = {}   |Δ| = {}   π = {:.2}%   ρ = {:.1}%   (δ = {})",
                analysis.loads.len(),
                delinquent.len(),
                100.0 * pi(delinquent.len(), analysis.loads.len()),
                100.0 * rho(&result, &delinquent),
                options.delta
            );
            println!(
                "{:>6} {:>8} {:>10} {:>9}  pattern",
                "inst", "phi", "execs", "misses"
            );
            for &idx in &delinquent {
                let load = analysis.load_at(idx).expect("flagged load exists");
                let phi = heuristic.score(load, result.exec_counts[idx]);
                println!(
                    "{:>6} {:>8.2} {:>10} {:>9}  {}",
                    idx,
                    phi,
                    result.exec_counts[idx],
                    result.load_misses[idx],
                    load.patterns
                        .first()
                        .map_or_else(|| "?".to_owned(), ToString::to_string)
                );
            }
            if options.reuse {
                print_reuse(&ctx, &result, &config, &delinquent, options.delta);
            }
            if let Some(classes) = &result.load_miss_classes {
                eprintln!("[flagged-load miss classes: compulsory / capacity / conflict]");
                for &idx in &delinquent {
                    let [compulsory, capacity, conflict] = classes[idx];
                    eprintln!("  inst {idx:>5}: {compulsory} / {capacity} / {conflict}");
                }
            }
            print_memory(&config, &result);
            print_profile(&result);
            write_trace(&options, &spans)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Writes the Chrome trace-event timeline if `--trace-out` was given.
fn write_trace(options: &Options, spans: &Spans) -> Result<(), String> {
    let Some(path) = &options.trace_out else {
        return Ok(());
    };
    std::fs::write(path, chrome_trace(spans).render()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("[trace written to {path}]");
    Ok(())
}

/// The `top` subcommand: simulate with the miss observatory on, rank
/// load sites by total misses, and print each static predictor's
/// verdict plus the site's phase behavior over epochs.
fn top(options: &Options) -> Result<(), String> {
    let spans = Arc::new(Spans::default());
    let program = spans.time(&format!("compile/{}", options.path), || {
        load_program(options)
    })?;
    let config = RunConfig {
        input: options.input.clone(),
        engine: options.engine.unwrap_or_else(Engine::from_env),
        memory: options.memory,
        observe: Some(ObserveConfig {
            epoch_len: options.epoch,
        }),
        ..RunConfig::default()
    };
    let start = std::time::Instant::now();
    let output = run_full(&program, &config).map_err(|e| e.to_string())?;
    spans.record_at(
        &format!("sim/{}", options.path),
        start,
        start.elapsed().as_secs_f64(),
    );
    let result = &output.result;
    let observatory = output.observatory.as_ref().expect("observe configured");

    // One shared pass manager: every predictor reuses the same cached
    // patterns, loops, and load classes.
    let ctx = AnalysisCtx::new(program).with_profile(&result.exec_counts);
    if options.trace_out.is_some() {
        ctx.set_pass_observer(Arc::new(SpanPassObserver::new(
            Arc::clone(&spans),
            format!("analysis/{}", options.path),
        )));
    }
    let cache = config.cache;
    let geometry = CacheGeometry::new(
        u64::from(cache.size_bytes()),
        u64::from(cache.block_bytes()),
        cache.assoc(),
    );
    let heuristic_set = Heuristic::default()
        .with_threshold(options.delta)
        .predict(&ctx);
    let reuse_set = ReusePredictor {
        geometry,
        threshold: options.delta,
    }
    .predict(&ctx);
    let profile_set = ProfilePredictor {
        geometry,
        threshold: options.delta,
    }
    .predict(&ctx);
    let sets = [
        ("heur", heuristic_set.clone()),
        ("okn", Okn.predict(&ctx)),
        ("bdh", Bdh.predict(&ctx)),
        ("reuse", reuse_set.clone()),
        ("prof", profile_set),
        (
            "∩",
            combine_hybrid(&heuristic_set, &reuse_set, HybridMode::Intersect),
        ),
        (
            "∪",
            combine_hybrid(&heuristic_set, &reuse_set, HybridMode::Union),
        ),
    ];

    let epochs = observatory.epochs();
    let missing: Vec<(usize, u64)> = result
        .load_misses
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, m)| m > 0)
        .collect();
    println!(
        "[{} of {} load sites missed; epoch = {} loads, {} epochs over {} observed loads]",
        missing.len(),
        ctx.analysis().loads.len(),
        observatory.epoch_len(),
        epochs.len(),
        observatory.total_loads(),
    );
    // With a stride prefetcher in play, show what it hid: demand hits
    // on prefetched lines are would-be misses the ranking no longer
    // sees, attributed per site by the observatory.
    let hidden = if config.memory.prefetch.is_some() {
        let totals = observatory.hidden_totals();
        println!(
            "[memory {}: {} would-be misses hidden by prefetch across {} sites]",
            config.memory,
            observatory.total_hidden(),
            totals.iter().filter(|&&n| n > 0).count(),
        );
        Some(totals)
    } else {
        None
    };
    if let Some(block) = &output.block_stats {
        println!(
            "[block cache: {} blocks decoded ({:.1} insts mean), {} dispatches ({} cached), {} insts retired]",
            block.blocks_decoded,
            block.mean_block_len(),
            block.dispatches,
            block.dispatch_hits,
            block.insts_retired,
        );
    }
    let mut ranked = missing;
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(options.limit);
    let header: String = sets
        .iter()
        .map(|(name, _)| *name)
        .collect::<Vec<_>>()
        .join(" ");
    let hidden_header = if hidden.is_some() {
        format!(" {:>9}", "hidden")
    } else {
        String::new()
    };
    println!(
        "{:>6} {:>10} {:>10} {:>7}{hidden_header}  {header}  phases",
        "inst", "misses", "execs", "ratio"
    );
    for (idx, misses) in ranked {
        let execs = result.exec_counts[idx];
        #[allow(clippy::cast_precision_loss)]
        let ratio = if execs > 0 {
            misses as f64 / execs as f64
        } else {
            0.0
        };
        let verdicts: String = sets
            .iter()
            .map(|(name, set)| {
                let mark = if set.contains(&idx) { '+' } else { '.' };
                format!("{mark:>width$}", width = name.chars().count())
            })
            .collect::<Vec<_>>()
            .join(" ");
        let per_epoch: Vec<u64> = epochs
            .iter()
            .map(|e| {
                e.misses
                    .iter()
                    .find(|&&(at, _)| at as usize == idx)
                    .map_or(0, |&(_, n)| n)
            })
            .collect();
        let hidden_cell = hidden.as_ref().map_or_else(String::new, |totals| {
            format!(" {:>9}", totals.get(idx).copied().unwrap_or(0))
        });
        println!(
            "{idx:>6} {misses:>10} {execs:>10} {ratio:>7.3}{hidden_cell}  {verdicts}  {}",
            sparkline(&per_epoch, 32)
        );
    }
    write_trace(options, &spans)
}

/// Renders per-epoch counts as a fixed-height bar chart, summing
/// adjacent epochs down to at most `max_cols` columns.
fn sparkline(values: &[u64], max_cols: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let chunk = values.len().div_ceil(max_cols).max(1);
    let cols: Vec<u64> = values.chunks(chunk).map(|c| c.iter().sum()).collect();
    let max = cols.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return BARS[0].to_string().repeat(cols.len());
    }
    cols.iter()
        .map(|&v| BARS[usize::try_from(u128::from(v) * 7 / u128::from(max)).expect("0..=7")])
        .collect()
}

/// The `bench-diff` perf-regression gate: compares the
/// higher-is-better throughput metrics of two `bench --json` outputs
/// and fails if any dropped by more than `threshold` percent, or any
/// lower-is-better cost metric rose by more than `cost_threshold`
/// percent. The cost threshold defaults to twice the main one: a
/// throughput drop saturates at -100% so the main threshold must stay
/// below that, while per-access costs can rise without bound and vary
/// more between hosts and input sizes, so their band is wider.
fn bench_diff(args: &[String]) -> Result<(), String> {
    let mut threshold = 10.0;
    let mut cost_threshold: Option<f64> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("--threshold requires a percent")?
                    .parse::<f64>()
                    .map_err(|e| e.to_string())?;
            }
            "--cost-threshold" => {
                cost_threshold = Some(
                    it.next()
                        .ok_or("--cost-threshold requires a percent")?
                        .parse::<f64>()
                        .map_err(|e| e.to_string())?,
                );
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            p => paths.push(p.to_owned()),
        }
    }
    if paths.len() != 2 {
        return Err("bench-diff needs exactly two JSON files: old new".into());
    }
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let old = load(&paths[0])?;
    let new = load(&paths[1])?;
    let cost_threshold = cost_threshold.unwrap_or(2.0 * threshold);
    let diff = diff_metrics(&old, &new, threshold, cost_threshold);
    println!(
        "{:<26} {:>16} {:>16} {:>9}",
        "metric", "old", "new", "delta"
    );
    for row in &diff.rows {
        println!("{row}");
    }
    // One-sided metrics are reported, not gated: a freshly added
    // throughput entry has no baseline to regress against, and a
    // removed one is loud here instead of silently vanishing from
    // the comparison.
    for key in &diff.added {
        println!("{key:<26} {:>16} {:>16}   (added in new)", "-", "present");
    }
    for key in &diff.removed {
        println!("{key:<26} {:>16} {:>16}   (removed in new)", "present", "-");
    }
    if diff.compared == 0 {
        return Err("no comparable metrics found in the two files".into());
    }
    if diff.regressions.is_empty() {
        println!(
            "ok: {} metric(s) within {threshold}% (costs: {cost_threshold}%) of baseline",
            diff.compared
        );
        Ok(())
    } else {
        Err(format!(
            "{} metric(s) regressed more than {threshold}% (costs: {cost_threshold}%): {}",
            diff.regressions.len(),
            diff.regressions.join(", ")
        ))
    }
}

/// The outcome of one metric comparison pass: formatted rows for the
/// two-sided metrics, plus the bookkeeping `bench_diff` gates on.
struct MetricsDiff {
    rows: Vec<String>,
    compared: u32,
    regressions: Vec<&'static str>,
    /// Metrics present only in the new file.
    added: Vec<&'static str>,
    /// Metrics present only in the old file.
    removed: Vec<&'static str>,
}

/// Compares the throughput metrics (higher-is-better, gated at
/// `threshold`) and probe-cost metrics (lower-is-better, gated at
/// `cost_threshold`) of two bench JSON documents. Metrics present in
/// only one document are classified as added/removed rather than
/// silently skipped.
fn diff_metrics(old: &Json, new: &Json, threshold: f64, cost_threshold: f64) -> MetricsDiff {
    // Higher-is-better throughput metrics emitted by `bench --json`.
    // Ratios (speedups) regress like raw rates: a drop is a slowdown.
    const METRICS: [&str; 6] = [
        "sim_insts_per_sec",
        "sim_step_insts_per_sec",
        "sim_l2_insts_per_sec",
        "sim_prefetch_insts_per_sec",
        "sim_engine_speedup",
        "speedup",
    ];
    // Lower-is-better cost metrics: the probe microbench reports
    // ns per data-cache access, so a RISE is the regression.
    const COST_METRICS: [&str; 4] = [
        "sim_probe_plain_ns",
        "sim_probe_coalesced_ns",
        "sim_probe_l2_ns",
        "sim_probe_prefetch_ns",
    ];
    #[allow(clippy::cast_precision_loss)]
    let num = |json: &Json, key: &str| match json.get(key) {
        Some(Json::F64(v)) => Some(*v),
        Some(Json::U64(v)) => Some(*v as f64),
        _ => None,
    };
    let mut diff = MetricsDiff {
        rows: Vec::new(),
        compared: 0,
        regressions: Vec::new(),
        added: Vec::new(),
        removed: Vec::new(),
    };
    let keys = METRICS
        .iter()
        .map(|&k| (k, false))
        .chain(COST_METRICS.iter().map(|&k| (k, true)));
    for (key, lower_is_better) in keys {
        let (o, n) = (num(old, key), num(new, key));
        let (o, n) = match (o, n) {
            (Some(o), Some(n)) => (o, n),
            (None, Some(_)) => {
                diff.added.push(key);
                continue;
            }
            (Some(_), None) => {
                diff.removed.push(key);
                continue;
            }
            (None, None) => continue,
        };
        if o <= 0.0 {
            continue;
        }
        diff.compared += 1;
        let delta = 100.0 * (n - o) / o;
        let regressed = if lower_is_better {
            delta >= cost_threshold
        } else {
            delta <= -threshold
        };
        let flag = if regressed {
            diff.regressions.push(key);
            "  REGRESSION"
        } else {
            ""
        };
        diff.rows.push(format!(
            "{key:<26} {o:>16.3} {n:>16.3} {delta:>+8.1}%{flag}"
        ));
    }
    diff
}

/// Prints the `--reuse` report on stdout: the loop-nest structure,
/// the static reuse predictions for every in-loop load next to the
/// measured miss ratio, and the reuse/hybrid delinquent sets scored
/// with the same π/ρ metrics as the heuristic.
fn print_reuse(
    ctx: &AnalysisCtx,
    result: &RunResult,
    config: &RunConfig,
    heuristic_set: &[usize],
    delta: f64,
) {
    let cache = config.cache;
    let geometry = CacheGeometry::new(
        u64::from(cache.size_bytes()),
        u64::from(cache.block_bytes()),
        cache.assoc(),
    );
    println!(
        "== reuse analysis ({}B cache, {}-way, {}B lines) ==",
        geometry.capacity, geometry.assoc, geometry.line
    );
    // Cached in the ctx: the reuse predictions below reuse these same
    // loop nests instead of rebuilding them.
    let loops = ctx.loops();
    for f in &loops.funcs {
        for l in f.nest.loops() {
            let header_inst = f.cfg.blocks()[l.header].start;
            println!(
                "loop {}#{}: header inst {header_inst}, depth {}, {} blocks, trip {:.0} ({})",
                f.name,
                l.id,
                l.depth,
                l.blocks.len(),
                l.trip.iterations(),
                if l.trip.is_exact() {
                    "exact"
                } else {
                    "assumed"
                },
            );
        }
    }
    println!(
        "{:>6}  {:<16} {:>5} {:>10} {:>10} {:>10}",
        "inst", "class", "depth", "trip", "predicted", "measured"
    );
    for p in ctx.reuse_predictions(&geometry) {
        if p.loop_depth == 0 {
            continue;
        }
        let execs = result.exec_counts[p.index];
        let measured = if execs > 0 {
            result.load_misses[p.index] as f64 / execs as f64
        } else {
            0.0
        };
        println!(
            "{:>6}  {:<16} {:>5} {:>10.0} {:>10.3} {:>10.3}",
            p.index,
            p.class.to_string(),
            p.loop_depth,
            p.trip,
            p.miss_ratio,
            measured,
        );
    }
    // The reuse-profile engine: one static histogram per load, priced
    // at this geometry with no re-analysis.
    let profiles = ctx.reuse_profiles();
    println!(
        "== reuse profiles ({} loads, {} interprocedural) ==",
        profiles.loads.len(),
        profiles.interprocedural_count(),
    );
    println!(
        "{:>6}  {:<16} {:>10} {:>6} {:>10} {:>10}",
        "inst", "class", "trip", "xproc", "profile", "measured"
    );
    let cap_blocks = geometry.capacity / geometry.line;
    for l in &profiles.loads {
        if !l.in_loop {
            continue;
        }
        let execs = result.exec_counts[l.index];
        let measured = if execs > 0 {
            result.load_misses[l.index] as f64 / execs as f64
        } else {
            0.0
        };
        let ratio = if l.hist.abstain >= 0.5 {
            "   abstain".to_owned()
        } else {
            format!("{:>10.3}", l.hist.miss_ratio(cap_blocks))
        };
        println!(
            "{:>6}  {:<16} {:>10.0} {:>6} {ratio} {:>10.3}",
            l.index,
            l.class.to_string(),
            l.trip,
            if l.interprocedural { "yes" } else { "" },
            measured,
        );
    }
    let reuse_set = ReusePredictor {
        geometry,
        threshold: delta,
    }
    .predict(ctx);
    let profile_set = ProfilePredictor {
        geometry,
        threshold: delta,
    }
    .predict(ctx);
    let score = |set: &[usize]| {
        (
            100.0 * pi(set.len(), ctx.analysis().loads.len()),
            100.0 * rho(result, set),
        )
    };
    for (name, set) in [
        ("reuse", reuse_set.clone()),
        ("profile", profile_set),
        (
            "hybrid∩",
            combine_hybrid(heuristic_set, &reuse_set, HybridMode::Intersect),
        ),
        (
            "hybrid∪",
            combine_hybrid(heuristic_set, &reuse_set, HybridMode::Union),
        ),
    ] {
        let (p, r) = score(&set);
        println!("{name}: |Δ| = {}   π = {p:.2}%   ρ = {r:.1}%", set.len());
    }
}

/// Prints the memory-system counters on stderr when a non-default
/// system (policy / L2 / prefetcher) is in play: per-level hit/miss
/// traffic and the prefetcher's fill accuracy.
fn print_memory(config: &RunConfig, result: &RunResult) {
    if config.memory.is_default() {
        return;
    }
    let mut line = format!("[memory {}", config.memory);
    if result.l2_hits + result.l2_misses > 0 {
        line.push_str(&format!(
            ": L2 {} hits / {} misses",
            result.l2_hits, result.l2_misses
        ));
    }
    if config.memory.prefetch.is_some() {
        line.push_str(&format!(
            "; prefetch {} fills, {} useful",
            result.prefetch_fills, result.prefetch_useful
        ));
    }
    line.push(']');
    eprintln!("{line}");
}

/// Prints the `--profile` cache breakdown on stderr: the three-Cs
/// miss-class split and the most conflicted cache sets.
fn print_profile(result: &dl_sim::RunResult) {
    let Some(profile) = &result.cache_profile else {
        return;
    };
    let c = &profile.classes;
    let total = c.total();
    let pct = |n: u64| 100.0 * n as f64 / total.max(1) as f64;
    eprintln!(
        "[miss classes: {} compulsory ({:.1}%), {} capacity ({:.1}%), {} conflict ({:.1}%)]",
        c.compulsory,
        pct(c.compulsory),
        c.capacity,
        pct(c.capacity),
        c.conflict,
        pct(c.conflict),
    );
    let mut sets: Vec<(usize, u64)> = profile
        .set_misses
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, misses)| misses > 0)
        .collect();
    sets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    if !sets.is_empty() {
        eprintln!("[hottest sets (misses / accesses)]");
        for (set, misses) in sets.into_iter().take(4) {
            eprintln!("  set {set:>4}: {misses} / {}", profile.set_accesses[set]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_options(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = opts(&["prog.mc"]).unwrap();
        assert_eq!(o.path, "prog.mc");
        assert_eq!(o.opt, OptLevel::O0);
        assert_eq!(o.emit, "asm");
        assert!(o.input.is_empty());
        assert!((o.delta - 0.10).abs() < 1e-12);
        assert!(!o.profile);
        assert!(!o.reuse);
        assert_eq!(o.engine, None);
    }

    #[test]
    fn flags_parse() {
        let o = opts(&[
            "prog.mc",
            "-O1",
            "--emit",
            "words",
            "--input",
            "1,2, 3",
            "--delta",
            "0.25",
            "--profile",
            "--reuse",
            "--engine",
            "step",
        ])
        .unwrap();
        assert_eq!(o.opt, OptLevel::O1);
        assert_eq!(o.emit, "words");
        assert_eq!(o.input, vec![1, 2, 3]);
        assert!((o.delta - 0.25).abs() < 1e-12);
        assert!(o.profile);
        assert!(o.reuse);
        assert_eq!(o.engine, Some(Engine::Step));
    }

    #[test]
    fn errors() {
        assert!(opts(&[]).is_err());
        assert!(opts(&["a.mc", "b.mc"]).is_err());
        assert!(opts(&["a.mc", "--bogus"]).is_err());
        assert!(opts(&["a.mc", "--input", "x"]).is_err());
        assert!(opts(&["a.mc", "--emit"]).is_err());
        assert!(opts(&["a.mc", "--engine"]).is_err());
        assert!(opts(&["a.mc", "--engine", "jit"]).is_err());
        assert!(opts(&["a.mc", "--trace-out"]).is_err());
        assert!(opts(&["a.mc", "--epoch", "0"]).is_err());
        assert!(opts(&["a.mc", "--limit", "-1"]).is_err());
    }

    #[test]
    fn memory_flags_parse() {
        use dl_sim::{Inclusion, Policy};
        let o = opts(&[
            "prog.mc",
            "--policy",
            "plru",
            "--l2",
            "64,8,excl",
            "--prefetch",
            "2",
        ])
        .unwrap();
        assert_eq!(o.memory.policy, Policy::Plru);
        let l2 = o.memory.l2.expect("l2 configured");
        assert_eq!(l2.inclusion, Inclusion::Exclusive);
        assert_eq!(o.memory.prefetch.map(|pf| pf.degree), Some(2));
        assert_eq!(o.memory.to_string(), "plru+l2:64KB-8w-excl+pf2");
        // Degree 0 and `--l2 none` disable their subsystems.
        let off = opts(&["prog.mc", "--prefetch", "0", "--l2", "none"]).unwrap();
        assert!(off.memory.prefetch.is_none());
        assert!(off.memory.l2.is_none());
        assert!(opts(&["prog.mc", "--policy", "fifo"]).is_err());
        assert!(opts(&["prog.mc", "--l2", "potato"]).is_err());
        assert!(opts(&["prog.mc", "--prefetch", "-1"]).is_err());
    }

    #[test]
    fn observatory_flags_parse() {
        let o = opts(&[
            "prog.mc",
            "--trace-out",
            "t.json",
            "--epoch",
            "4096",
            "--limit",
            "3",
        ])
        .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.json"));
        assert_eq!(o.epoch, 4096);
        assert_eq!(o.limit, 3);
        // Defaults mirror the simulator's observatory config.
        let d = opts(&["prog.mc"]).unwrap();
        assert_eq!(d.epoch, ObserveConfig::default().epoch_len);
        assert_eq!(d.limit, 10);
        assert!(d.trace_out.is_none());
    }

    #[test]
    fn sparkline_downsamples_and_scales() {
        assert_eq!(sparkline(&[], 8), "");
        assert_eq!(sparkline(&[0, 0, 0], 8), "▁▁▁");
        let line = sparkline(&[0, 7, 3, 7], 8);
        assert_eq!(line.chars().count(), 4);
        assert!(line.starts_with('▁') && line.contains('█'));
        // 64 epochs fold into at most 8 columns.
        let folded = sparkline(&vec![1; 64], 8);
        assert_eq!(folded.chars().count(), 8);
    }

    #[test]
    fn bench_diff_gates_on_regression() {
        let dir = std::env::temp_dir();
        let old = dir.join("dlc_bench_diff_old.json");
        let new = dir.join("dlc_bench_diff_new.json");
        std::fs::write(&old, r#"{"sim_insts_per_sec": 100.0, "speedup": 2.0}"#).unwrap();
        std::fs::write(&new, r#"{"sim_insts_per_sec": 55.0, "speedup": 2.1}"#).unwrap();
        let args = |t: &str| {
            vec![
                old.display().to_string(),
                new.display().to_string(),
                "--threshold".to_owned(),
                t.to_owned(),
            ]
        };
        // A 45% drop fails a 10% gate but passes a 60% one.
        let err = bench_diff(&args("10")).unwrap_err();
        assert!(err.contains("sim_insts_per_sec"), "unexpected error: {err}");
        assert!(bench_diff(&args("60")).is_ok());
        // A metric that vanished from the new file is reported as
        // removed — it no longer gates, but it is not silently skipped.
        std::fs::write(&new, r#"{"speedup": 2.1}"#).unwrap();
        assert!(bench_diff(&args("10")).is_ok());
        assert!(bench_diff(&[old.display().to_string()]).is_err());
    }

    #[test]
    fn diff_metrics_reports_one_sided_keys_as_added_or_removed() {
        let old = Json::parse(r#"{"sim_insts_per_sec": 100.0, "speedup": 2.0}"#).unwrap();
        let new =
            Json::parse(r#"{"sim_insts_per_sec": 99.0, "sim_l2_insts_per_sec": 80.0}"#).unwrap();
        let d = diff_metrics(&old, &new, 10.0, 20.0);
        assert_eq!(d.compared, 1);
        assert!(d.regressions.is_empty());
        assert_eq!(d.added, vec!["sim_l2_insts_per_sec"]);
        assert_eq!(d.removed, vec!["speedup"]);
        // Metrics absent from both sides appear nowhere.
        assert!(!d.added.contains(&"sim_prefetch_insts_per_sec"));
        assert!(!d.removed.contains(&"sim_prefetch_insts_per_sec"));
    }

    #[test]
    fn diff_metrics_gates_cost_metrics_on_rises_not_drops() {
        // ns/access is lower-is-better: a big drop is fine, a big
        // rise is the regression.
        let old = Json::parse(r#"{"sim_probe_plain_ns": 10.0, "sim_probe_l2_ns": 10.0}"#).unwrap();
        let new = Json::parse(r#"{"sim_probe_plain_ns": 5.0, "sim_probe_l2_ns": 12.0}"#).unwrap();
        let d = diff_metrics(&old, &new, 10.0, 10.0);
        assert_eq!(d.compared, 2);
        assert_eq!(d.regressions, vec!["sim_probe_l2_ns"]);
        // The cost band is independent of the throughput band: a
        // wider cost threshold lets the same rise pass while a
        // throughput drop of that size would still gate.
        let d = diff_metrics(&old, &new, 10.0, 30.0);
        assert!(d.regressions.is_empty());
    }

    #[test]
    fn dispatch_reports_unknown_command() {
        let e = dispatch(&["frobnicate".into(), "x.mc".into()]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn dispatch_reports_missing_file() {
        let e = dispatch(&["run".into(), "/nonexistent/x.mc".into()]).unwrap_err();
        assert!(e.contains("x.mc"));
    }
}
