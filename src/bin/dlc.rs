//! `dlc` — the delinquent-loads compiler driver.
//!
//! A small command-line front end over the whole pipeline:
//!
//! ```text
//! dlc build  prog.mc [-O1] [--emit asm|bin|words]   # compile, print assembly or binary
//! dlc run    prog.mc [-O1] [--input 1,2,3]          # compile and simulate
//! dlc analyze prog.mc [-O1] [--input 1,2,3] [--delta 0.1]
//!                                                   # flag possibly-delinquent loads
//! ```
//!
//! `--engine step|block` (on `run` and `analyze`) selects the
//! simulator core: the reference per-instruction interpreter or the
//! block-cached engine (the default). The two are observationally
//! identical; `step` exists for differential debugging. The
//! `DL_SIM_ENGINE` environment variable sets the default when the
//! flag is absent.
//!
//! `--profile` (on `run` and `analyze`) turns on the simulator's
//! opt-in cache profiling: the miss-class breakdown (compulsory /
//! capacity / conflict, paper §3) and the hottest cache sets are
//! printed on stderr. Profiling never changes hit/miss counts, so
//! stdout is byte-identical with and without it.
//!
//! `analyze` runs the full paper pipeline: compile → simulate (for the
//! frequency classes and ground-truth misses) → address patterns →
//! heuristic, then prints each flagged load with its φ score, pattern,
//! and measured misses.
//!
//! `--reuse` (on `analyze`) additionally prints the static loop-nest
//! and reuse-distance report: every detected loop with its estimated
//! trip count, every in-loop load's address class and predicted miss
//! ratio next to the measured one, and the reuse and hybrid
//! delinquent sets scored with the same π/ρ metrics.

use std::process::ExitCode;

use delinquent_loads::heuristic::combine::{combine_hybrid, HybridMode};
use delinquent_loads::heuristic::{Heuristic, Predictor};
use delinquent_loads::minic::{compile, OptLevel};
use delinquent_loads::mips::encode::encode_program;
use dl_analysis::{AnalysisCtx, CacheGeometry};
use dl_baselines::ReusePredictor;
use dl_experiments::metrics::{pi, rho};
use dl_sim::{run, Engine, RunConfig, RunResult};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dlc: {message}");
            ExitCode::from(2)
        }
    }
}

struct Options {
    path: String,
    opt: OptLevel,
    input: Vec<i32>,
    emit: String,
    delta: f64,
    profile: bool,
    reuse: bool,
    engine: Option<Engine>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        path: String::new(),
        opt: OptLevel::O0,
        input: Vec::new(),
        emit: "asm".to_owned(),
        delta: 0.10,
        profile: false,
        reuse: false,
        engine: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-O0" => options.opt = OptLevel::O0,
            "-O1" | "-O" => options.opt = OptLevel::O1,
            "--emit" => {
                options.emit = it.next().ok_or("--emit requires asm|bin|words")?.clone();
            }
            "--input" => {
                let list = it.next().ok_or("--input requires a comma list")?;
                options.input = list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<i32>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--delta" => {
                options.delta = it
                    .next()
                    .ok_or("--delta requires a number")?
                    .parse::<f64>()
                    .map_err(|e| e.to_string())?;
            }
            "--profile" => options.profile = true,
            "--reuse" => options.reuse = true,
            "--engine" => {
                options.engine = Some(
                    it.next()
                        .ok_or("--engine requires step|block")?
                        .parse::<Engine>()?,
                );
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => {
                if !options.path.is_empty() {
                    return Err("multiple input files given".into());
                }
                options.path = path.to_owned();
            }
        }
    }
    if options.path.is_empty() {
        return Err("no input file".into());
    }
    Ok(options)
}

fn load_program(options: &Options) -> Result<dl_mips::program::Program, String> {
    let source =
        std::fs::read_to_string(&options.path).map_err(|e| format!("{}: {e}", options.path))?;
    compile(&source, options.opt).map_err(|e| format!("{}: {e}", options.path))
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(
            "usage: dlc <build|run|analyze> prog.mc [-O1] [--emit asm|bin|words] \
             [--input 1,2,3] [--delta 0.1] [--profile] [--reuse] [--engine step|block]"
                .into(),
        );
    };
    let options = parse_options(rest)?;
    match command.as_str() {
        "build" => {
            let program = load_program(&options)?;
            match options.emit.as_str() {
                "asm" => print!("{}", program.to_asm()),
                "words" => {
                    let words = encode_program(&program).map_err(|e| e.to_string())?;
                    for (i, w) in words.iter().enumerate() {
                        println!("{:#010x}: {w:#010x}  {}", program.pc(i), program.insts[i]);
                    }
                }
                "bin" => {
                    use std::io::Write;
                    let words = encode_program(&program).map_err(|e| e.to_string())?;
                    let mut out = std::io::stdout().lock();
                    for w in words {
                        out.write_all(&w.to_le_bytes()).map_err(|e| e.to_string())?;
                    }
                }
                other => return Err(format!("unknown emit kind `{other}`")),
            }
            Ok(())
        }
        "run" => {
            let program = load_program(&options)?;
            let config = RunConfig {
                input: options.input.clone(),
                classify_misses: options.profile,
                // Precedence: --engine beats DL_SIM_ENGINE beats the default.
                engine: options.engine.unwrap_or_else(Engine::from_env),
                ..RunConfig::default()
            };
            let start = std::time::Instant::now();
            let result = run(&program, &config).map_err(|e| e.to_string())?;
            let secs = start.elapsed().as_secs_f64();
            for v in &result.output {
                println!("{v}");
            }
            eprintln!(
                "[{} instructions, {} loads, {} load misses, exit {}, {:.0}M insts/s]",
                result.instructions,
                result.loads,
                result.load_misses_total,
                result.exit_code,
                result.instructions as f64 / secs.max(1e-9) / 1e6
            );
            print_profile(&result);
            Ok(())
        }
        "analyze" => {
            let program = load_program(&options)?;
            let config = RunConfig {
                input: options.input.clone(),
                classify_misses: options.profile,
                engine: options.engine.unwrap_or_else(Engine::from_env),
                ..RunConfig::default()
            };
            let result = run(&program, &config).map_err(|e| e.to_string())?;
            // One pass manager feeds the heuristic and the --reuse
            // report: patterns, loops, and load classes are each
            // computed at most once however many predictors run.
            let ctx = AnalysisCtx::new(program).with_profile(&result.exec_counts);
            let analysis = ctx.analysis();
            let heuristic = Heuristic::default().with_threshold(options.delta);
            let delinquent = heuristic.predict(&ctx);
            println!(
                "Λ = {}   |Δ| = {}   π = {:.2}%   ρ = {:.1}%   (δ = {})",
                analysis.loads.len(),
                delinquent.len(),
                100.0 * pi(delinquent.len(), analysis.loads.len()),
                100.0 * rho(&result, &delinquent),
                options.delta
            );
            println!(
                "{:>6} {:>8} {:>10} {:>9}  pattern",
                "inst", "phi", "execs", "misses"
            );
            for &idx in &delinquent {
                let load = analysis.load_at(idx).expect("flagged load exists");
                let phi = heuristic.score(load, result.exec_counts[idx]);
                println!(
                    "{:>6} {:>8.2} {:>10} {:>9}  {}",
                    idx,
                    phi,
                    result.exec_counts[idx],
                    result.load_misses[idx],
                    load.patterns
                        .first()
                        .map_or_else(|| "?".to_owned(), ToString::to_string)
                );
            }
            if options.reuse {
                print_reuse(&ctx, &result, &config, &delinquent, options.delta);
            }
            if let Some(classes) = &result.load_miss_classes {
                eprintln!("[flagged-load miss classes: compulsory / capacity / conflict]");
                for &idx in &delinquent {
                    let [compulsory, capacity, conflict] = classes[idx];
                    eprintln!("  inst {idx:>5}: {compulsory} / {capacity} / {conflict}");
                }
            }
            print_profile(&result);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Prints the `--reuse` report on stdout: the loop-nest structure,
/// the static reuse predictions for every in-loop load next to the
/// measured miss ratio, and the reuse/hybrid delinquent sets scored
/// with the same π/ρ metrics as the heuristic.
fn print_reuse(
    ctx: &AnalysisCtx,
    result: &RunResult,
    config: &RunConfig,
    heuristic_set: &[usize],
    delta: f64,
) {
    let cache = config.cache;
    let geometry = CacheGeometry::new(
        u64::from(cache.size_bytes()),
        u64::from(cache.block_bytes()),
        cache.assoc(),
    );
    println!(
        "== reuse analysis ({}B cache, {}-way, {}B lines) ==",
        geometry.capacity, geometry.assoc, geometry.line
    );
    // Cached in the ctx: the reuse predictions below reuse these same
    // loop nests instead of rebuilding them.
    let loops = ctx.loops();
    for f in &loops.funcs {
        for l in f.nest.loops() {
            let header_inst = f.cfg.blocks()[l.header].start;
            println!(
                "loop {}#{}: header inst {header_inst}, depth {}, {} blocks, trip {:.0} ({})",
                f.name,
                l.id,
                l.depth,
                l.blocks.len(),
                l.trip.iterations(),
                if l.trip.is_exact() {
                    "exact"
                } else {
                    "assumed"
                },
            );
        }
    }
    println!(
        "{:>6}  {:<16} {:>5} {:>10} {:>10} {:>10}",
        "inst", "class", "depth", "trip", "predicted", "measured"
    );
    for p in ctx.reuse_predictions(&geometry) {
        if p.loop_depth == 0 {
            continue;
        }
        let execs = result.exec_counts[p.index];
        let measured = if execs > 0 {
            result.load_misses[p.index] as f64 / execs as f64
        } else {
            0.0
        };
        println!(
            "{:>6}  {:<16} {:>5} {:>10.0} {:>10.3} {:>10.3}",
            p.index,
            p.class.to_string(),
            p.loop_depth,
            p.trip,
            p.miss_ratio,
            measured,
        );
    }
    let reuse_set = ReusePredictor {
        geometry,
        threshold: delta,
    }
    .predict(ctx);
    let score = |set: &[usize]| {
        (
            100.0 * pi(set.len(), ctx.analysis().loads.len()),
            100.0 * rho(result, set),
        )
    };
    for (name, set) in [
        ("reuse", reuse_set.clone()),
        (
            "hybrid∩",
            combine_hybrid(heuristic_set, &reuse_set, HybridMode::Intersect),
        ),
        (
            "hybrid∪",
            combine_hybrid(heuristic_set, &reuse_set, HybridMode::Union),
        ),
    ] {
        let (p, r) = score(&set);
        println!("{name}: |Δ| = {}   π = {p:.2}%   ρ = {r:.1}%", set.len());
    }
}

/// Prints the `--profile` cache breakdown on stderr: the three-Cs
/// miss-class split and the most conflicted cache sets.
fn print_profile(result: &dl_sim::RunResult) {
    let Some(profile) = &result.cache_profile else {
        return;
    };
    let c = &profile.classes;
    let total = c.total();
    let pct = |n: u64| 100.0 * n as f64 / total.max(1) as f64;
    eprintln!(
        "[miss classes: {} compulsory ({:.1}%), {} capacity ({:.1}%), {} conflict ({:.1}%)]",
        c.compulsory,
        pct(c.compulsory),
        c.capacity,
        pct(c.capacity),
        c.conflict,
        pct(c.conflict),
    );
    let mut sets: Vec<(usize, u64)> = profile
        .set_misses
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, misses)| misses > 0)
        .collect();
    sets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    if !sets.is_empty() {
        eprintln!("[hottest sets (misses / accesses)]");
        for (set, misses) in sets.into_iter().take(4) {
            eprintln!("  set {set:>4}: {misses} / {}", profile.set_accesses[set]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_options(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = opts(&["prog.mc"]).unwrap();
        assert_eq!(o.path, "prog.mc");
        assert_eq!(o.opt, OptLevel::O0);
        assert_eq!(o.emit, "asm");
        assert!(o.input.is_empty());
        assert!((o.delta - 0.10).abs() < 1e-12);
        assert!(!o.profile);
        assert!(!o.reuse);
        assert_eq!(o.engine, None);
    }

    #[test]
    fn flags_parse() {
        let o = opts(&[
            "prog.mc",
            "-O1",
            "--emit",
            "words",
            "--input",
            "1,2, 3",
            "--delta",
            "0.25",
            "--profile",
            "--reuse",
            "--engine",
            "step",
        ])
        .unwrap();
        assert_eq!(o.opt, OptLevel::O1);
        assert_eq!(o.emit, "words");
        assert_eq!(o.input, vec![1, 2, 3]);
        assert!((o.delta - 0.25).abs() < 1e-12);
        assert!(o.profile);
        assert!(o.reuse);
        assert_eq!(o.engine, Some(Engine::Step));
    }

    #[test]
    fn errors() {
        assert!(opts(&[]).is_err());
        assert!(opts(&["a.mc", "b.mc"]).is_err());
        assert!(opts(&["a.mc", "--bogus"]).is_err());
        assert!(opts(&["a.mc", "--input", "x"]).is_err());
        assert!(opts(&["a.mc", "--emit"]).is_err());
        assert!(opts(&["a.mc", "--engine"]).is_err());
        assert!(opts(&["a.mc", "--engine", "jit"]).is_err());
    }

    #[test]
    fn dispatch_reports_unknown_command() {
        let e = dispatch(&["frobnicate".into(), "x.mc".into()]).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn dispatch_reports_missing_file() {
        let e = dispatch(&["run".into(), "/nonexistent/x.mc".into()]).unwrap_err();
        assert!(e.contains("x.mc"));
    }
}
