//! Validation of the static reuse-profile engine against measured
//! shadow-LRU stack distances on the full 18-workload suite.
//!
//! One static analysis per workload produces per-load reuse-distance
//! histograms; one simulation per workload measures exact per-site
//! LRU stack distances (Olken shadow stack). Pricing both at the same
//! nine cache geometries must agree within a documented tolerance —
//! the whole point of the engine is that the single geometry-free
//! histogram prices every geometry without re-analysis.
//!
//! Tolerance: the static side models *O0 code shapes* with assumed
//! trip counts, class-level novelty fractions, and abstention on
//! irregular accesses, so per-site agreement is approximate. We
//! assert the access-count-weighted mean absolute error between
//! static and shadow-LRU per-site miss ratios (abstained sites
//! excluded from both sides) stays below [`TOLERANCE`] at every
//! geometry, and that the mean of those errors over every
//! (workload, geometry) pair stays below [`SUITE_MEAN`]. Measured
//! values on the shrunk inputs (2026-08): 16 of 18 workloads sit
//! below 0.22 at every geometry; `300.twolf` peaks at 0.42 at 8KB,
//! where its footprint straddles the capacity boundary (the static
//! model prices a re-walk as thrashing that the measured stack just
//! fits) — an inherent knife-edge of interval footprints near
//! capacity, not a bucketing bug. The suite-mean gate is the tight
//! one: a one-bucket-off regression in either histogram moves it far
//! past 0.10.

use delinquent_loads::prelude::*;
use delinquent_loads::workloads::Benchmark;
use dl_analysis::CacheGeometry;
use dl_sim::run_full;

/// Maximum access-count-weighted mean |static − shadow-LRU| per-site
/// miss-ratio error, per workload per geometry.
const TOLERANCE: f64 = 0.45;

/// Maximum mean weighted MAE across all (workload, geometry) pairs.
const SUITE_MEAN: f64 = 0.10;

/// Reduced inputs so the whole suite runs in seconds even unoptimized
/// (mirrors `observatory_differential.rs`).
fn small_inputs(b: &Benchmark) -> Vec<i32> {
    match b.name {
        "008.espresso" => vec![48, 24, 1],
        "022.li" => vec![400, 2, 5],
        "072.sc" => vec![12, 10, 2],
        "099.go" => vec![2, 2, 3],
        "101.tomcatv" => vec![16, 2],
        "124.m88ksim" => vec![2000, 7],
        "126.gcc" => vec![8, 6, 2],
        "129.compress" => vec![2000, 3],
        "132.ijpeg" => vec![3, 2],
        "147.vortex" => vec![128, 2],
        "164.gzip" => vec![2000, 3],
        "175.vpr" => vec![10, 500, 3],
        "179.art" => vec![8, 1000, 3],
        "181.mcf" => vec![64, 128, 2],
        "183.equake" => vec![64, 4, 2],
        "188.ammp" => vec![64, 4, 2],
        "197.parser" => vec![400, 3],
        "300.twolf" => vec![10, 500, 2],
        other => panic!("unknown benchmark {other}"),
    }
}

#[test]
fn static_profiles_track_shadow_lru_on_all_workloads() {
    let mut interprocedural = 0usize;
    let mut maes: Vec<f64> = Vec::new();
    for b in delinquent_loads::workloads::all() {
        let program = b.compile(OptLevel::O0).expect("workload compiles");

        // ONE static analysis: geometry never enters histogram
        // construction, only the pricing below.
        let ctx = AnalysisCtx::new(program.clone());
        let profiles = ctx.reuse_profiles();
        interprocedural += profiles.interprocedural_count();

        // ONE simulation: the shadow LRU stack measures exact reuse
        // distances independent of the simulated cache's geometry.
        let config = RunConfig {
            input: small_inputs(&b),
            max_steps: 200_000_000,
            reuse_profile: true,
            ..RunConfig::default()
        };
        let out = run_full(&program, &config).expect("workload runs clean");
        let measured = out.reuse.expect("reuse measurement collected");

        for kb in [8u64, 16, 64] {
            for assoc in [2u32, 4, 8] {
                let geometry = CacheGeometry::new(kb * 1024, 32, assoc);
                let cap_blocks = kb * 1024 / 32;
                let (mut err, mut den) = (0.0f64, 0u64);
                for pred in profiles.predict(&geometry) {
                    if pred.abstained {
                        continue;
                    }
                    let site = measured.site(pred.index);
                    let n = site.total();
                    if n == 0 {
                        continue;
                    }
                    let m = site.miss_ratio(cap_blocks);
                    err += (pred.miss_ratio - m).abs() * n as f64;
                    den += n;
                }
                if den == 0 {
                    continue;
                }
                // The aggregate static-vs-shadow gap never exceeds
                // this weighted MAE (triangle inequality), so one
                // gate covers both.
                let mae = err / den as f64;
                assert!(
                    mae <= TOLERANCE,
                    "{}: {kb}KB/{assoc}-way weighted per-site MAE {mae:.3} exceeds {TOLERANCE}",
                    b.name
                );
                maes.push(mae);
            }
        }
    }
    let mean = maes.iter().sum::<f64>() / maes.len() as f64;
    assert!(
        mean <= SUITE_MEAN,
        "suite-wide mean weighted MAE {mean:.3} exceeds {SUITE_MEAN}"
    );

    // The interprocedural machinery must earn its keep somewhere in
    // the suite: at least one load only resolves through a callee
    // summary / call-site context.
    assert!(
        interprocedural >= 1,
        "no cross-function load resolved interprocedurally across the suite"
    );
}
