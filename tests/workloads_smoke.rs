//! Every bundled workload, compiled at both optimization levels and
//! run end-to-end on reduced inputs: no traps, deterministic output,
//! O0/O1 agreement.

use delinquent_loads::prelude::*;
use delinquent_loads::workloads::Benchmark;

/// Reduced inputs so the whole suite runs in seconds even unoptimized.
fn small_inputs(b: &Benchmark) -> Vec<i32> {
    match b.name {
        "008.espresso" => vec![48, 24, 1],
        "022.li" => vec![400, 2, 5],
        "072.sc" => vec![12, 10, 2],
        "099.go" => vec![2, 2, 3],
        "101.tomcatv" => vec![16, 2],
        "124.m88ksim" => vec![2000, 7],
        "126.gcc" => vec![8, 6, 2],
        "129.compress" => vec![2000, 3],
        "132.ijpeg" => vec![3, 2],
        "147.vortex" => vec![128, 2],
        "164.gzip" => vec![2000, 3],
        "175.vpr" => vec![10, 500, 3],
        "179.art" => vec![8, 1000, 3],
        "181.mcf" => vec![64, 128, 2],
        "183.equake" => vec![64, 4, 2],
        "188.ammp" => vec![64, 4, 2],
        "197.parser" => vec![400, 3],
        "300.twolf" => vec![10, 500, 2],
        other => panic!("unknown benchmark {other}"),
    }
}

#[test]
fn all_workloads_run_clean_at_both_levels() {
    for b in delinquent_loads::workloads::all() {
        let input = small_inputs(&b);
        let mut outputs = Vec::new();
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = b
                .compile(opt)
                .unwrap_or_else(|e| panic!("{} fails to compile at {opt}: {e}", b.name));
            let config = RunConfig {
                input: input.clone(),
                max_steps: 200_000_000,
                ..RunConfig::default()
            };
            let result = run(&program, &config)
                .unwrap_or_else(|e| panic!("{} trapped at {opt}: {e}", b.name));
            assert!(
                !result.output.is_empty(),
                "{} printed nothing at {opt}",
                b.name
            );
            assert!(result.loads > 0, "{} did no loads", b.name);
            outputs.push(result.output);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "{}: O0 and O1 outputs diverge",
            b.name
        );
    }
}

#[test]
fn all_workloads_have_analyzable_loads() {
    for b in delinquent_loads::workloads::all() {
        let program = b.compile(OptLevel::O0).expect("compiles");
        let analysis = analyze_program(&program, &AnalysisConfig::default());
        assert_eq!(
            analysis.loads.len(),
            program.static_load_count(),
            "{}: analysis covers every load",
            b.name
        );
        // Every load got at least one pattern.
        for load in &analysis.loads {
            assert!(
                !load.patterns.is_empty(),
                "{}: load {} has no patterns",
                b.name,
                load.index
            );
        }
        // The cold library gives every workload some pointer-shaped
        // patterns (what OKN/BDH and the heuristic key on).
        assert!(
            analysis.loads.iter().any(|l| l.max_deref_nesting() >= 2),
            "{}: no deep dereference patterns at all",
            b.name
        );
    }
}
