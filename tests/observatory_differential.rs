//! Observatory consistency on the real workload suite: the windowed
//! per-load-site miss counts (the `dlc top` data source) must account
//! for *every* miss the simulator's per-site classifier sees — epoch
//! totals sum exactly to the per-site miss counts — and the epochs
//! themselves must be identical under the step and block engines,
//! since epochs are windows of observed load accesses and the access
//! stream is engine-invariant.

use delinquent_loads::prelude::*;
use delinquent_loads::workloads::Benchmark;
use dl_sim::{run_full, Engine, ObserveConfig, SimOutput};

/// Reduced inputs so the whole suite runs in seconds even unoptimized
/// (mirrors `engine_differential.rs`).
fn small_inputs(b: &Benchmark) -> Vec<i32> {
    match b.name {
        "008.espresso" => vec![48, 24, 1],
        "022.li" => vec![400, 2, 5],
        "072.sc" => vec![12, 10, 2],
        "099.go" => vec![2, 2, 3],
        "101.tomcatv" => vec![16, 2],
        "124.m88ksim" => vec![2000, 7],
        "126.gcc" => vec![8, 6, 2],
        "129.compress" => vec![2000, 3],
        "132.ijpeg" => vec![3, 2],
        "147.vortex" => vec![128, 2],
        "164.gzip" => vec![2000, 3],
        "175.vpr" => vec![10, 500, 3],
        "179.art" => vec![8, 1000, 3],
        "181.mcf" => vec![64, 128, 2],
        "183.equake" => vec![64, 4, 2],
        "188.ammp" => vec![64, 4, 2],
        "197.parser" => vec![400, 3],
        "300.twolf" => vec![10, 500, 2],
        other => panic!("unknown benchmark {other}"),
    }
}

fn observe(program: &Program, input: &[i32], engine: Engine) -> SimOutput {
    let config = RunConfig {
        input: input.to_vec(),
        max_steps: 200_000_000,
        engine,
        classify_misses: true,
        // Small windows so even the shrunk runs roll several epochs.
        observe: Some(ObserveConfig { epoch_len: 1 << 14 }),
        ..RunConfig::default()
    };
    run_full(program, &config).expect("workload runs clean")
}

#[test]
fn observatory_totals_match_classifier_on_all_workloads() {
    for b in delinquent_loads::workloads::all() {
        let input = small_inputs(&b);
        let program = b.compile(OptLevel::O0).expect("workload compiles");
        let block = observe(&program, &input, Engine::Block);
        let obs = block.observatory.as_ref().expect("observe configured");

        // Every epoch window sums back exactly to the per-site miss
        // counts the classifier records — no miss lost, none invented.
        assert_eq!(
            obs.site_totals(),
            block.result.load_misses,
            "{}: observatory epoch totals diverge from per-site misses",
            b.name
        );
        assert_eq!(
            obs.total_misses(),
            block.result.load_misses_total,
            "{}: observatory miss total diverges",
            b.name
        );
        // The per-site three-Cs classification agrees with the same
        // per-site counts, closing the loop: observatory == per-site
        // misses == classified misses.
        let classes = block
            .result
            .load_miss_classes
            .as_ref()
            .expect("classification on");
        for (site, per_class) in classes.iter().enumerate() {
            assert_eq!(
                per_class.iter().sum::<u64>(),
                block.result.load_misses[site],
                "{}: site {site} classified misses diverge",
                b.name
            );
        }

        // Epochs are windows of observed loads, so the step engine
        // produces the same windows, misses, and order.
        let step = observe(&program, &input, Engine::Step);
        assert_eq!(step.result, block.result, "{}: engines diverge", b.name);
        let step_obs = step.observatory.as_ref().expect("observe configured");
        assert_eq!(
            step_obs.epochs(),
            obs.epochs(),
            "{}: observatory epochs diverge across engines",
            b.name
        );
    }
}
