//! Cross-crate integration tests: source → compiler → simulator →
//! analysis → heuristic, exercising the whole reproduction pipeline on
//! purpose-built kernels where the ground truth is known.

use delinquent_loads::prelude::*;

/// Compiles, runs, and analyzes a source at O0 with the given cache.
fn full_pipeline(source: &str, cache: CacheConfig) -> (Program, RunResult, ProgramAnalysis) {
    let program = compile(source, OptLevel::O0).expect("compiles");
    let config = RunConfig {
        cache,
        ..RunConfig::default()
    };
    let result = run(&program, &config).expect("runs");
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    (program, result, analysis)
}

/// A heap pointer chase with a cache-friendly side loop: the heuristic
/// must flag the loads that actually miss and skip the friendly ones.
#[test]
fn heuristic_flags_the_actual_delinquent_loads() {
    let source = r#"
        struct node { int value; struct node* next; int p1; int p2;
                      int p3; int p4; int p5; int p6; };
        int small[32];
        int main() {
            struct node* head; struct node* p; int i; int s;
            head = 0;
            for (i = 0; i < 4000; i = i + 1) {
                p = malloc(sizeof(struct node));
                p->value = i;
                p->next = head;
                head = p;
            }
            s = 0;
            for (i = 0; i < 50000; i = i + 1) { s = s + small[i & 31]; }
            for (p = head; p != 0; p = p->next) { s = s + p->value; }
            print(s);
            return 0;
        }
    "#;
    let (_, result, analysis) = full_pipeline(source, CacheConfig::paper_baseline());
    let delinquent = Heuristic::default().classify(&analysis, &result.exec_counts);

    // Coverage: the flagged set must account for nearly all misses.
    assert!(
        rho(&result, &delinquent) > 0.9,
        "coverage {:.2} too low",
        rho(&result, &delinquent)
    );
    // Precision: far fewer loads than Λ are flagged.
    assert!(pi(delinquent.len(), analysis.loads.len()) < 0.5);
    // The top-missing load is flagged.
    let top = analysis
        .loads
        .iter()
        .map(|l| l.index)
        .max_by_key(|&i| result.load_misses[i])
        .expect("has loads");
    assert!(result.load_misses[top] > 1000, "chase must miss a lot");
    assert!(delinquent.contains(&top), "top miss source not flagged");
}

/// A purely cache-friendly program: the heuristic should flag little,
/// and what it flags must barely matter (there are almost no misses).
#[test]
fn friendly_program_has_few_misses_to_cover() {
    let source = r#"
        int a[32];
        int main() {
            int i; int s;
            s = 0;
            for (i = 0; i < 100000; i = i + 1) { s = s + a[i & 31]; }
            print(s);
            return 0;
        }
    "#;
    let (_, result, _) = full_pipeline(source, CacheConfig::paper_baseline());
    // Whole array fits one or two cache sets' worth of blocks.
    assert!(
        result.load_misses_total < 100,
        "unexpected misses: {}",
        result.load_misses_total
    );
}

/// O0 and O1 compilations of the same program produce the same
/// observable behaviour, and the heuristic stays stable across them
/// (the paper's compiler-optimization stability claim).
#[test]
fn heuristic_is_stable_across_optimization_levels() {
    let mut bench = delinquent_loads::workloads::by_name("183.equake").expect("exists");
    bench.input1 = vec![900, 8, 3]; // mid-size: meaningful misses, fast in debug
    let mut outputs = Vec::new();
    let mut rhos = Vec::new();
    for opt in [OptLevel::O0, OptLevel::O1] {
        let program = bench.compile(opt).expect("compiles");
        let config = RunConfig {
            cache: CacheConfig::paper_training(),
            input: bench.input1.clone(),
            ..RunConfig::default()
        };
        let result = run(&program, &config).expect("runs");
        let analysis = analyze_program(&program, &AnalysisConfig::default());
        let delta = Heuristic::default().classify(&analysis, &result.exec_counts);
        outputs.push(result.output.clone());
        rhos.push(rho(&result, &delta));
    }
    assert_eq!(outputs[0], outputs[1], "O0/O1 outputs diverge");
    assert!(
        (rhos[0] - rhos[1]).abs() < 0.15,
        "coverage unstable across optimization: {rhos:?}"
    );
}

/// The heuristic's coverage must be stable across cache geometries on
/// a miss-heavy workload (Tables 8 and 9 in miniature).
#[test]
fn coverage_stable_across_cache_geometries() {
    let mut bench = delinquent_loads::workloads::by_name("181.mcf").expect("exists");
    bench.input1 = vec![900, 1800, 3];
    let program = bench.compile(OptLevel::O0).expect("compiles");
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    let mut rhos = Vec::new();
    for cache in [
        CacheConfig::kb(8, 2),
        CacheConfig::kb(8, 8),
        CacheConfig::kb(64, 4),
    ] {
        let config = RunConfig {
            cache,
            input: bench.input1.clone(),
            ..RunConfig::default()
        };
        let result = run(&program, &config).expect("runs");
        let delta = Heuristic::default().classify(&analysis, &result.exec_counts);
        rhos.push(rho(&result, &delta));
    }
    let spread =
        rhos.iter().fold(0.0f64, |m, &r| m.max(r)) - rhos.iter().fold(1.0f64, |m, &r| m.min(r));
    assert!(
        spread < 0.1,
        "coverage spread {spread:.3} across caches: {rhos:?}"
    );
}

/// OKN and BDH reach comparable coverage but flag more loads than the
/// heuristic — the paper's central comparison (Table 12 in miniature).
#[test]
fn baselines_are_less_precise_at_similar_coverage() {
    let mut bench = delinquent_loads::workloads::by_name("147.vortex").expect("exists");
    bench.input1 = vec![900, 3];
    let program = bench.compile(OptLevel::O0).expect("compiles");
    let config = RunConfig {
        cache: CacheConfig::paper_baseline(),
        input: bench.input1.clone(),
        ..RunConfig::default()
    };
    let result = run(&program, &config).expect("runs");
    let analysis = analyze_program(&program, &AnalysisConfig::default());

    let ours = Heuristic::default().classify(&analysis, &result.exec_counts);
    let okn = okn_delinquent_set(&analysis);
    let bdh = bdh_delinquent_set(&program, &analysis);

    assert!(rho(&result, &ours) > 0.85);
    assert!(rho(&result, &okn) > 0.80);
    assert!(rho(&result, &bdh) > 0.80);
    assert!(
        ours.len() < okn.len(),
        "heuristic ({}) should flag fewer than OKN ({})",
        ours.len(),
        okn.len()
    );
    assert!(
        ours.len() < bdh.len(),
        "heuristic ({}) should flag fewer than BDH ({})",
        ours.len(),
        bdh.len()
    );
}

/// Combining with profiling sharpens precision at modest coverage cost
/// (§9 / Table 14 in miniature), and beats random selection.
#[test]
fn profiling_combination_sharpens_precision() {
    let mut bench = delinquent_loads::workloads::by_name("022.li").expect("exists");
    bench.input1 = vec![4000, 5, 5];
    let program = bench.compile(OptLevel::O0).expect("compiles");
    let config = RunConfig {
        cache: CacheConfig::paper_training(),
        input: bench.input1.clone(),
        ..RunConfig::default()
    };
    let result = run(&program, &config).expect("runs");
    let analysis = analyze_program(&program, &AnalysisConfig::default());
    let h = Heuristic::default();

    let delta_h = h.classify(&analysis, &result.exec_counts);
    let delta_p = profiling_set(&program, &result, 0.9);
    let scored = h.score_all(&analysis, &result.exec_counts);
    let combined = combine_with_profiling(&delta_p, &scored, &delta_h, 0.0);

    assert!(
        combined.len() < delta_p.len(),
        "intersection must shrink Δ_P"
    );
    assert!(combined.len() <= delta_h.len());
    assert!(
        rho(&result, &combined) > 0.75,
        "combined coverage {:.2}",
        rho(&result, &combined)
    );
    // Dominates random selection of the same size from the hotspots.
    let star = delinquent_loads::experiments::metrics::random_control(
        &result,
        &delta_p,
        combined.len(),
        3,
        7,
    );
    assert!(
        rho(&result, &combined) > star,
        "combined {:.2} vs random {:.2}",
        rho(&result, &combined),
        star
    );
}

/// The assembly round-trip holds for real compiled workloads: parsing
/// `to_asm()` output reproduces the exact instruction stream.
#[test]
fn compiled_workloads_round_trip_through_assembly() {
    for name in ["129.compress", "101.tomcatv"] {
        let bench = delinquent_loads::workloads::by_name(name).expect("exists");
        let program = bench.compile(OptLevel::O1).expect("compiles");
        let reparsed = delinquent_loads::mips::parse::parse_asm(&program.to_asm()).expect("parses");
        assert_eq!(program.insts, reparsed.insts, "{name} instruction mismatch");
        assert_eq!(program.entry, reparsed.entry, "{name} entry mismatch");
    }
}

/// Determinism: the same benchmark + input + cache produces bit-equal
/// measurements (the simulator's RNG is seeded).
#[test]
fn simulation_is_deterministic() {
    let mut bench = delinquent_loads::workloads::by_name("197.parser").expect("exists");
    bench.input2 = vec![1500, 4];
    let program = bench.compile(OptLevel::O0).expect("compiles");
    let config = RunConfig {
        input: bench.input2.clone(),
        ..RunConfig::default()
    };
    let a = run(&program, &config).expect("runs");
    let b = run(&program, &config).expect("runs");
    assert_eq!(a, b);
}
