//! Differential property test of the compiler + simulator: random
//! integer expressions must evaluate to the same value as native Rust
//! wrapping arithmetic, at both optimization levels.
//!
//! This pins down codegen semantics (wrapping ops, signed division,
//! shift masking, comparison lowering) and guarantees O0 and O1 agree
//! — the property the paper's "insensitive to compiler optimization"
//! claim silently depends on.

use delinquent_loads::prelude::*;
use dl_testkit::{cases, Rng};

/// A random expression with a computable reference value.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    /// The runtime input variable (defeats constant folding at O1).
    Input,
    Neg(Box<E>),
    Not(Box<E>),
    BitNot(Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    /// Division by a guaranteed-nonzero denominator `(d & 15) + 1`.
    DivSafe(Box<E>, Box<E>),
    RemSafe(Box<E>, Box<E>),
    ShlK(Box<E>, u8),
    ShrK(Box<E>, u8),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Le(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

impl E {
    fn to_source(&self) -> String {
        match self {
            E::Const(c) => {
                if *c < 0 {
                    // MiniC has no negative literals; parenthesize.
                    format!("(0 - {})", (i64::from(*c)).abs())
                } else {
                    c.to_string()
                }
            }
            E::Input => "x".into(),
            E::Neg(a) => format!("(-{})", a.to_source()),
            E::Not(a) => format!("(!{})", a.to_source()),
            E::BitNot(a) => format!("(~{})", a.to_source()),
            E::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            E::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            E::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            E::DivSafe(a, b) => {
                format!("({} / (({} & 15) + 1))", a.to_source(), b.to_source())
            }
            E::RemSafe(a, b) => {
                format!("({} % (({} & 15) + 1))", a.to_source(), b.to_source())
            }
            E::ShlK(a, k) => format!("({} << {k})", a.to_source()),
            E::ShrK(a, k) => format!("({} >> {k})", a.to_source()),
            E::And(a, b) => format!("({} & {})", a.to_source(), b.to_source()),
            E::Or(a, b) => format!("({} | {})", a.to_source(), b.to_source()),
            E::Xor(a, b) => format!("({} ^ {})", a.to_source(), b.to_source()),
            E::Lt(a, b) => format!("({} < {})", a.to_source(), b.to_source()),
            E::Le(a, b) => format!("({} <= {})", a.to_source(), b.to_source()),
            E::Eq(a, b) => format!("({} == {})", a.to_source(), b.to_source()),
        }
    }

    fn eval(&self, x: i32) -> i32 {
        match self {
            E::Const(c) => *c,
            E::Input => x,
            E::Neg(a) => a.eval(x).wrapping_neg(),
            E::Not(a) => i32::from(a.eval(x) == 0),
            E::BitNot(a) => !a.eval(x),
            E::Add(a, b) => a.eval(x).wrapping_add(b.eval(x)),
            E::Sub(a, b) => a.eval(x).wrapping_sub(b.eval(x)),
            E::Mul(a, b) => a.eval(x).wrapping_mul(b.eval(x)),
            E::DivSafe(a, b) => {
                let d = (b.eval(x) & 15) + 1;
                a.eval(x).wrapping_div(d)
            }
            E::RemSafe(a, b) => {
                let d = (b.eval(x) & 15) + 1;
                a.eval(x).wrapping_rem(d)
            }
            E::ShlK(a, k) => a.eval(x) << k,
            E::ShrK(a, k) => a.eval(x) >> k,
            E::And(a, b) => a.eval(x) & b.eval(x),
            E::Or(a, b) => a.eval(x) | b.eval(x),
            E::Xor(a, b) => a.eval(x) ^ b.eval(x),
            E::Lt(a, b) => i32::from(a.eval(x) < b.eval(x)),
            E::Le(a, b) => i32::from(a.eval(x) <= b.eval(x)),
            E::Eq(a, b) => i32::from(a.eval(x) == b.eval(x)),
        }
    }
}

fn arb_expr_depth(rng: &mut Rng, depth: usize) -> E {
    if depth == 0 || rng.chance(0.3) {
        return if rng.chance(0.5) {
            E::Const(rng.range_i32(-1_000_000, 1_000_000))
        } else {
            E::Input
        };
    }
    fn sub(rng: &mut Rng, depth: usize) -> Box<E> {
        Box::new(arb_expr_depth(rng, depth - 1))
    }
    match rng.index(16) {
        0 => E::Neg(sub(rng, depth)),
        1 => E::Not(sub(rng, depth)),
        2 => E::BitNot(sub(rng, depth)),
        3 => E::Add(sub(rng, depth), sub(rng, depth)),
        4 => E::Sub(sub(rng, depth), sub(rng, depth)),
        5 => E::Mul(sub(rng, depth), sub(rng, depth)),
        6 => E::DivSafe(sub(rng, depth), sub(rng, depth)),
        7 => E::RemSafe(sub(rng, depth), sub(rng, depth)),
        8 => E::ShlK(sub(rng, depth), rng.range_i32(0, 16) as u8),
        9 => E::ShrK(sub(rng, depth), rng.range_i32(0, 16) as u8),
        10 => E::And(sub(rng, depth), sub(rng, depth)),
        11 => E::Or(sub(rng, depth), sub(rng, depth)),
        12 => E::Xor(sub(rng, depth), sub(rng, depth)),
        13 => E::Lt(sub(rng, depth), sub(rng, depth)),
        14 => E::Le(sub(rng, depth), sub(rng, depth)),
        _ => E::Eq(sub(rng, depth), sub(rng, depth)),
    }
}

fn arb_expr(rng: &mut Rng) -> E {
    arb_expr_depth(rng, 4)
}

#[test]
fn compiled_expressions_match_reference() {
    cases(96, 0xc09e1, |rng| {
        let e = arb_expr(rng);
        let x = rng.range_i32(-100_000, 100_000);
        let source = format!(
            "int main() {{ int x; x = read(); print({}); return 0; }}",
            e.to_source()
        );
        let expected = e.eval(x);
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = compile(&source, opt)
                .unwrap_or_else(|err| panic!("compile failed at {opt}: {err}\n{source}"));
            let config = RunConfig {
                input: vec![x],
                ..RunConfig::default()
            };
            let result = run(&program, &config)
                .unwrap_or_else(|err| panic!("trap at {opt}: {err}\n{source}"));
            assert_eq!(
                result.output[0], expected,
                "mismatch at {opt} for x={x}\nsource: {source}"
            );
        }
    });
}

/// Looping accumulation agrees with a Rust reference loop.
#[test]
fn compiled_loops_match_reference() {
    cases(96, 0xc09e2, |rng| {
        let n = rng.range_i32(1, 200);
        let step = rng.range_i32(1, 9);
        let seed = rng.range_i32(0, 1000);
        let source = format!(
            "int main() {{
                int i; int s;
                s = {seed};
                for (i = 0; i < {n}; i = i + {step}) {{ s = s + i * 3 - (s >> 5); }}
                print(s);
                return 0;
             }}"
        );
        let mut s = seed;
        let mut i = 0;
        while i < n {
            s = s.wrapping_add(i.wrapping_mul(3)).wrapping_sub(s >> 5);
            i += step;
        }
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = compile(&source, opt).expect("compiles");
            let result = run(&program, &RunConfig::default()).expect("runs");
            assert_eq!(result.output[0], s, "at {opt}");
        }
    });
}
