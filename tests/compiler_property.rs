//! Differential property test of the compiler + simulator: random
//! integer expressions must evaluate to the same value as native Rust
//! wrapping arithmetic, at both optimization levels.
//!
//! This pins down codegen semantics (wrapping ops, signed division,
//! shift masking, comparison lowering) and guarantees O0 and O1 agree
//! — the property the paper's "insensitive to compiler optimization"
//! claim silently depends on.

use proptest::prelude::*;

use delinquent_loads::prelude::*;

/// A random expression with a computable reference value.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    /// The runtime input variable (defeats constant folding at O1).
    Input,
    Neg(Box<E>),
    Not(Box<E>),
    BitNot(Box<E>),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    /// Division by a guaranteed-nonzero denominator `(d & 15) + 1`.
    DivSafe(Box<E>, Box<E>),
    RemSafe(Box<E>, Box<E>),
    ShlK(Box<E>, u8),
    ShrK(Box<E>, u8),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Le(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
}

impl E {
    fn to_source(&self) -> String {
        match self {
            E::Const(c) => {
                if *c < 0 {
                    // MiniC has no negative literals; parenthesize.
                    format!("(0 - {})", (i64::from(*c)).abs())
                } else {
                    c.to_string()
                }
            }
            E::Input => "x".into(),
            E::Neg(a) => format!("(-{})", a.to_source()),
            E::Not(a) => format!("(!{})", a.to_source()),
            E::BitNot(a) => format!("(~{})", a.to_source()),
            E::Add(a, b) => format!("({} + {})", a.to_source(), b.to_source()),
            E::Sub(a, b) => format!("({} - {})", a.to_source(), b.to_source()),
            E::Mul(a, b) => format!("({} * {})", a.to_source(), b.to_source()),
            E::DivSafe(a, b) => {
                format!("({} / (({} & 15) + 1))", a.to_source(), b.to_source())
            }
            E::RemSafe(a, b) => {
                format!("({} % (({} & 15) + 1))", a.to_source(), b.to_source())
            }
            E::ShlK(a, k) => format!("({} << {k})", a.to_source()),
            E::ShrK(a, k) => format!("({} >> {k})", a.to_source()),
            E::And(a, b) => format!("({} & {})", a.to_source(), b.to_source()),
            E::Or(a, b) => format!("({} | {})", a.to_source(), b.to_source()),
            E::Xor(a, b) => format!("({} ^ {})", a.to_source(), b.to_source()),
            E::Lt(a, b) => format!("({} < {})", a.to_source(), b.to_source()),
            E::Le(a, b) => format!("({} <= {})", a.to_source(), b.to_source()),
            E::Eq(a, b) => format!("({} == {})", a.to_source(), b.to_source()),
        }
    }

    fn eval(&self, x: i32) -> i32 {
        match self {
            E::Const(c) => *c,
            E::Input => x,
            E::Neg(a) => a.eval(x).wrapping_neg(),
            E::Not(a) => i32::from(a.eval(x) == 0),
            E::BitNot(a) => !a.eval(x),
            E::Add(a, b) => a.eval(x).wrapping_add(b.eval(x)),
            E::Sub(a, b) => a.eval(x).wrapping_sub(b.eval(x)),
            E::Mul(a, b) => a.eval(x).wrapping_mul(b.eval(x)),
            E::DivSafe(a, b) => {
                let d = (b.eval(x) & 15) + 1;
                a.eval(x).wrapping_div(d)
            }
            E::RemSafe(a, b) => {
                let d = (b.eval(x) & 15) + 1;
                a.eval(x).wrapping_rem(d)
            }
            E::ShlK(a, k) => a.eval(x) << k,
            E::ShrK(a, k) => a.eval(x) >> k,
            E::And(a, b) => a.eval(x) & b.eval(x),
            E::Or(a, b) => a.eval(x) | b.eval(x),
            E::Xor(a, b) => a.eval(x) ^ b.eval(x),
            E::Lt(a, b) => i32::from(a.eval(x) < b.eval(x)),
            E::Le(a, b) => i32::from(a.eval(x) <= b.eval(x)),
            E::Eq(a, b) => i32::from(a.eval(x) == b.eval(x)),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1_000_000i32..1_000_000).prop_map(E::Const),
        Just(E::Input),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        let b = inner.clone();
        prop_oneof![
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Not(Box::new(a))),
            inner.clone().prop_map(|a| E::BitNot(Box::new(a))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::Add(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::Sub(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::Mul(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone())
                .prop_map(|(a, c)| E::DivSafe(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone())
                .prop_map(|(a, c)| E::RemSafe(Box::new(a), Box::new(c))),
            (inner.clone(), 0u8..16).prop_map(|(a, k)| E::ShlK(Box::new(a), k)),
            (inner.clone(), 0u8..16).prop_map(|(a, k)| E::ShrK(Box::new(a), k)),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::And(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::Or(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::Xor(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::Lt(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| E::Le(Box::new(a), Box::new(c))),
            (inner, b).prop_map(|(a, c)| E::Eq(Box::new(a), Box::new(c))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_expressions_match_reference(e in arb_expr(), x in -100_000i32..100_000) {
        let source = format!(
            "int main() {{ int x; x = read(); print({}); return 0; }}",
            e.to_source()
        );
        let expected = e.eval(x);
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = compile(&source, opt)
                .unwrap_or_else(|err| panic!("compile failed at {opt}: {err}\n{source}"));
            let config = RunConfig {
                input: vec![x],
                ..RunConfig::default()
            };
            let result = run(&program, &config)
                .unwrap_or_else(|err| panic!("trap at {opt}: {err}\n{source}"));
            prop_assert_eq!(
                result.output[0], expected,
                "mismatch at {} for x={}\nsource: {}", opt, x, source
            );
        }
    }

    /// Looping accumulation agrees with a Rust reference loop.
    #[test]
    fn compiled_loops_match_reference(n in 1i32..200, step in 1i32..9, seed in 0i32..1000) {
        let source = format!(
            "int main() {{
                int i; int s;
                s = {seed};
                for (i = 0; i < {n}; i = i + {step}) {{ s = s + i * 3 - (s >> 5); }}
                print(s);
                return 0;
             }}"
        );
        let mut s = seed;
        let mut i = 0;
        while i < n {
            s = s.wrapping_add(i.wrapping_mul(3)).wrapping_sub(s >> 5);
            i += step;
        }
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = compile(&source, opt).expect("compiles");
            let result = run(&program, &RunConfig::default()).expect("runs");
            prop_assert_eq!(result.output[0], s, "at {}", opt);
        }
    }
}
