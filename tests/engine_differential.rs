//! Engine equivalence on the real workload suite: every bundled
//! benchmark, at both optimization levels, must produce a
//! byte-identical `RunResult` under the step and block engines — and
//! the three-Cs miss classification must survive the comparison on a
//! classified subset.

use delinquent_loads::prelude::*;
use delinquent_loads::workloads::Benchmark;
use dl_sim::Engine;

/// Reduced inputs so the whole suite runs in seconds even unoptimized
/// (mirrors `workloads_smoke.rs`).
fn small_inputs(b: &Benchmark) -> Vec<i32> {
    match b.name {
        "008.espresso" => vec![48, 24, 1],
        "022.li" => vec![400, 2, 5],
        "072.sc" => vec![12, 10, 2],
        "099.go" => vec![2, 2, 3],
        "101.tomcatv" => vec![16, 2],
        "124.m88ksim" => vec![2000, 7],
        "126.gcc" => vec![8, 6, 2],
        "129.compress" => vec![2000, 3],
        "132.ijpeg" => vec![3, 2],
        "147.vortex" => vec![128, 2],
        "164.gzip" => vec![2000, 3],
        "175.vpr" => vec![10, 500, 3],
        "179.art" => vec![8, 1000, 3],
        "181.mcf" => vec![64, 128, 2],
        "183.equake" => vec![64, 4, 2],
        "188.ammp" => vec![64, 4, 2],
        "197.parser" => vec![400, 3],
        "300.twolf" => vec![10, 500, 2],
        other => panic!("unknown benchmark {other}"),
    }
}

fn run_engine(program: &Program, input: &[i32], engine: Engine, classify: bool) -> RunResult {
    let config = RunConfig {
        input: input.to_vec(),
        max_steps: 200_000_000,
        engine,
        classify_misses: classify,
        ..RunConfig::default()
    };
    run(program, &config).expect("workload runs clean")
}

#[test]
fn all_workloads_identical_across_engines() {
    for b in delinquent_loads::workloads::all() {
        let input = small_inputs(&b);
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = b.compile(opt).expect("workload compiles");
            let step = run_engine(&program, &input, Engine::Step, false);
            let block = run_engine(&program, &input, Engine::Block, false);
            assert_eq!(step, block, "{} diverges across engines at {opt}", b.name);
        }
    }
}

/// Miss classification routes the block engine through its per-access
/// slow path; the three-Cs breakdown and per-set histograms must still
/// match the reference engine exactly.
#[test]
fn classified_workloads_identical_across_engines() {
    for b in delinquent_loads::workloads::all() {
        if !matches!(b.name, "129.compress" | "181.mcf" | "101.tomcatv") {
            continue;
        }
        let input = small_inputs(&b);
        let program = b.compile(OptLevel::O1).expect("workload compiles");
        let step = run_engine(&program, &input, Engine::Step, true);
        let block = run_engine(&program, &input, Engine::Block, true);
        assert_eq!(
            step, block,
            "{} classified run diverges across engines",
            b.name
        );
        let profile = block.cache_profile.as_ref().expect("profile collected");
        assert!(
            profile.classes.total() > 0,
            "{} classified no misses",
            b.name
        );
    }
}
