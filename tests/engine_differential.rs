//! Engine equivalence on the real workload suite: every bundled
//! benchmark, at both optimization levels, must produce a
//! byte-identical `RunResult` under the step and block engines — and
//! the three-Cs miss classification must survive the comparison on a
//! classified subset.

use delinquent_loads::prelude::*;
use delinquent_loads::workloads::Benchmark;
use dl_sim::{
    run_full, Engine, Inclusion, L2Config, MemoryConfig, ObserveConfig, Policy,
    StridePrefetchConfig,
};

/// Reduced inputs so the whole suite runs in seconds even unoptimized
/// (mirrors `workloads_smoke.rs`).
fn small_inputs(b: &Benchmark) -> Vec<i32> {
    match b.name {
        "008.espresso" => vec![48, 24, 1],
        "022.li" => vec![400, 2, 5],
        "072.sc" => vec![12, 10, 2],
        "099.go" => vec![2, 2, 3],
        "101.tomcatv" => vec![16, 2],
        "124.m88ksim" => vec![2000, 7],
        "126.gcc" => vec![8, 6, 2],
        "129.compress" => vec![2000, 3],
        "132.ijpeg" => vec![3, 2],
        "147.vortex" => vec![128, 2],
        "164.gzip" => vec![2000, 3],
        "175.vpr" => vec![10, 500, 3],
        "179.art" => vec![8, 1000, 3],
        "181.mcf" => vec![64, 128, 2],
        "183.equake" => vec![64, 4, 2],
        "188.ammp" => vec![64, 4, 2],
        "197.parser" => vec![400, 3],
        "300.twolf" => vec![10, 500, 2],
        other => panic!("unknown benchmark {other}"),
    }
}

fn run_engine(program: &Program, input: &[i32], engine: Engine, classify: bool) -> RunResult {
    let config = RunConfig {
        input: input.to_vec(),
        max_steps: 200_000_000,
        engine,
        classify_misses: classify,
        ..RunConfig::default()
    };
    run(program, &config).expect("workload runs clean")
}

#[test]
fn all_workloads_identical_across_engines() {
    for b in delinquent_loads::workloads::all() {
        let input = small_inputs(&b);
        for opt in [OptLevel::O0, OptLevel::O1] {
            let program = b.compile(opt).expect("workload compiles");
            let step = run_engine(&program, &input, Engine::Step, false);
            let block = run_engine(&program, &input, Engine::Block, false);
            assert_eq!(step, block, "{} diverges across engines at {opt}", b.name);
        }
    }
}

/// Miss classification routes the block engine through its per-access
/// slow path; the three-Cs breakdown and per-set histograms must still
/// match the reference engine exactly.
#[test]
fn classified_workloads_identical_across_engines() {
    for b in delinquent_loads::workloads::all() {
        if !matches!(b.name, "129.compress" | "181.mcf" | "101.tomcatv") {
            continue;
        }
        let input = small_inputs(&b);
        let program = b.compile(OptLevel::O1).expect("workload compiles");
        let step = run_engine(&program, &input, Engine::Step, true);
        let block = run_engine(&program, &input, Engine::Block, true);
        assert_eq!(
            step, block,
            "{} classified run diverges across engines",
            b.name
        );
        let profile = block.cache_profile.as_ref().expect("profile collected");
        assert!(
            profile.classes.total() > 0,
            "{} classified no misses",
            b.name
        );
    }
}

/// A sample of the memory-system matrix ({policy} × {L1 only, +L2
/// inclusive, +L2 exclusive} × {prefetch off/on}) on the memory-bound
/// extension workloads: every configuration must produce a
/// byte-identical `RunResult` under both engines, and the per-level
/// counters must stay self-consistent.
#[test]
fn extension_workloads_identical_across_engines_under_memory_matrix() {
    let configs = [
        MemoryConfig::default(),
        MemoryConfig {
            policy: Policy::Plru,
            ..MemoryConfig::default()
        },
        MemoryConfig {
            policy: Policy::Random,
            l2: Some(L2Config::kb(64, 8, Inclusion::Inclusive)),
            ..MemoryConfig::default()
        },
        MemoryConfig {
            l2: Some(L2Config::kb(64, 8, Inclusion::Exclusive)),
            prefetch: Some(StridePrefetchConfig::degree(2)),
            ..MemoryConfig::default()
        },
        MemoryConfig {
            prefetch: Some(StridePrefetchConfig::degree(4)),
            ..MemoryConfig::default()
        },
    ];
    for b in delinquent_loads::workloads::extension_benchmarks() {
        let input: Vec<i32> = b.input2.iter().map(|v| (*v).clamp(1, 64)).collect();
        let program = b.compile(OptLevel::O1).expect("workload compiles");
        for memory in configs {
            let config = |engine| RunConfig {
                input: input.clone(),
                max_steps: 200_000_000,
                engine,
                memory,
                ..RunConfig::default()
            };
            let step = run(&program, &config(Engine::Step)).expect("workload runs clean");
            let block = run(&program, &config(Engine::Block)).expect("workload runs clean");
            assert_eq!(
                step, block,
                "{} diverges across engines under {memory}",
                b.name
            );
            block
                .check_consistency()
                .unwrap_or_else(|e| panic!("{} inconsistent under {memory}: {e}", b.name));
        }
    }
}

/// With a prefetcher configured, the observatory's hidden-miss ledger
/// (the `dlc top` "hidden" column) must reconcile with the simulator's
/// `prefetch_useful` counter under both engines: the ledger covers the
/// *load* hits on prefetched lines, so it is bounded by the counter
/// (stores that first-touch a prefetched line count as useful but have
/// no load site), and the per-site totals must be engine-invariant.
#[test]
fn hidden_miss_ledger_matches_prefetch_counters() {
    let memory = MemoryConfig {
        prefetch: Some(StridePrefetchConfig::degree(2)),
        ..MemoryConfig::default()
    };
    let mut hidden_somewhere = false;
    for b in delinquent_loads::workloads::extension_benchmarks() {
        let input: Vec<i32> = b.input2.iter().map(|v| (*v).clamp(1, 64)).collect();
        let program = b.compile(OptLevel::O1).expect("workload compiles");
        let observe = |engine| {
            let config = RunConfig {
                input: input.clone(),
                max_steps: 200_000_000,
                engine,
                memory,
                observe: Some(ObserveConfig { epoch_len: 1 << 12 }),
                ..RunConfig::default()
            };
            run_full(&program, &config).expect("workload runs clean")
        };
        let step = observe(Engine::Step);
        let block = observe(Engine::Block);
        assert_eq!(step.result, block.result, "{}: engines diverge", b.name);
        let step_obs = step.observatory.as_ref().expect("observe configured");
        let block_obs = block.observatory.as_ref().expect("observe configured");
        assert_eq!(
            step_obs.hidden_totals(),
            block_obs.hidden_totals(),
            "{}: hidden ledger diverges across engines",
            b.name
        );
        for out in [&step, &block] {
            let obs = out.observatory.as_ref().expect("observe configured");
            assert!(
                obs.total_hidden() <= out.result.prefetch_useful,
                "{}: hidden load ledger exceeds prefetch_useful",
                b.name
            );
        }
        hidden_somewhere |= block_obs.total_hidden() > 0;
    }
    assert!(
        hidden_somewhere,
        "no extension workload had a load hidden by prefetch"
    );
}
